"""Tests for the foundation modules: units, rng, errors, version."""

import pytest
from hypothesis import given, strategies as st

import repro
from repro import errors
from repro.rng import SeededStreams, stream_seed
from repro.units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_time,
    from_ms,
    to_ms,
    to_us,
)


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------

def test_size_constants():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB


def test_time_conversions():
    assert to_ms(1.5) == 1500.0
    assert to_us(2e-6) == pytest.approx(2.0)
    assert from_ms(250.0) == 0.25
    assert from_ms(to_ms(0.123)) == pytest.approx(0.123)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(131072) == "128.0 KiB"
    assert fmt_bytes(1536 * KiB) == "1.5 MiB"
    assert fmt_bytes(3 * GiB) == "3.0 GiB"


def test_fmt_time():
    assert fmt_time(0.0) == "0 s"
    assert "us" in fmt_time(5e-6)
    assert "ms" in fmt_time(0.005)
    assert "s" in fmt_time(2.0)
    assert "min" in fmt_time(600.0)


@given(st.floats(min_value=1e-9, max_value=1e9))
def test_ms_roundtrip_property(seconds):
    assert from_ms(to_ms(seconds)) == pytest.approx(seconds, rel=1e-12)


# ---------------------------------------------------------------------------
# rng
# ---------------------------------------------------------------------------

def test_stream_seed_stable_and_distinct():
    assert stream_seed(1, "a") == stream_seed(1, "a")
    assert stream_seed(1, "a") != stream_seed(1, "b")
    assert stream_seed(1, "a") != stream_seed(2, "a")


def test_streams_are_cached_and_independent():
    s = SeededStreams(seed=9)
    a = s.get("alpha")
    assert s.get("alpha") is a
    b = s.get("beta")
    assert b is not a


def test_same_seed_same_draws():
    a = SeededStreams(5).get("x").integers(0, 1000, size=10)
    b = SeededStreams(5).get("x").integers(0, 1000, size=10)
    assert list(a) == list(b)


def test_adding_streams_does_not_perturb_existing():
    s1 = SeededStreams(5)
    draw_direct = list(s1.get("x").integers(0, 1000, size=5))
    s2 = SeededStreams(5)
    s2.get("unrelated")  # created first — must not shift "x"
    draw_after = list(s2.get("x").integers(0, 1000, size=5))
    assert draw_direct == draw_after


def test_fork_creates_distinct_family():
    parent = SeededStreams(5)
    child = parent.fork("sub")
    assert child.seed != parent.seed
    a = list(parent.get("x").integers(0, 1000, size=5))
    b = list(child.get("x").integers(0, 1000, size=5))
    assert a != b


def test_reset_restarts_streams():
    s = SeededStreams(5)
    first = list(s.get("x").integers(0, 1000, size=5))
    s.reset()
    again = list(s.get("x").integers(0, 1000, size=5))
    assert first == again


def test_seed_type_checked():
    with pytest.raises(TypeError):
        SeededStreams(seed="nope")  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# errors & package surface
# ---------------------------------------------------------------------------

def test_error_hierarchy_roots():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_http_error_carries_status():
    e = errors.HttpError(404, "missing")
    assert e.status == 404
    assert isinstance(e, errors.ReproError)


def test_public_api_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))

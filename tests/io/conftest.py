"""Shared fixtures for the io-layer tests: a small engine + disk + fs."""

import pytest

from repro.io import CacheParams, FileSystem, FsParams
from repro.io.prefetch import NoPrefetch
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def disk(engine):
    # ~40 MB disk: plenty for the io-layer tests and fast to simulate.
    return Disk(engine, geometry=DiskGeometry(cylinders=1000, heads=2, sectors_per_track=40))


@pytest.fixture
def fs(engine, disk):
    """File system with prefetching disabled (most tests want the
    demand path only; prefetch-specific tests build their own)."""
    return FileSystem(
        engine,
        disk,
        cache_params=CacheParams(capacity_pages=512),
        prefetch_policy=NoPrefetch(),
    )


def run(engine, gen):
    """Run one coroutine to completion, returning its value."""
    return engine.run_process(gen)

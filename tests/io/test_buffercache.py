"""Tests for the buffer cache: hits/misses, prefetch, eviction, flush."""

import pytest

from repro.errors import StorageError
from repro.io import CacheParams, FileSystem
from repro.io.buffercache import BufferCache
from repro.io.prefetch import NoPrefetch
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry

from tests.io.conftest import run


def small_fs(engine, capacity_pages=16):
    disk = Disk(engine, geometry=DiskGeometry(cylinders=1000, heads=2, sectors_per_track=40))
    return FileSystem(
        engine,
        disk,
        cache_params=CacheParams(capacity_pages=capacity_pages),
        prefetch_policy=NoPrefetch(),
    )


def make_file(engine, fs, path="/f", size=100_000):
    run(engine, fs.create(path, size_bytes=size))
    return fs.stat(path)


def test_page_size_must_divide_into_blocks(engine, disk):
    with pytest.raises(StorageError):
        BufferCache(engine, disk, CacheParams(page_size=1000))


def test_first_access_misses_second_hits(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    hits, misses = run(engine, fs.cache.access(ino, 0, 4))
    assert (hits, misses) == (0, 4)
    hits, misses = run(engine, fs.cache.access(ino, 0, 4))
    assert (hits, misses) == (4, 0)
    assert fs.cache.stats.hits == 4
    assert fs.cache.stats.misses == 4


def test_miss_is_orders_of_magnitude_slower_than_hit(engine):
    """The mechanism behind the latency spikes in the paper's Tables 3-4."""
    fs = small_fs(engine)
    ino = make_file(engine, fs)

    t0 = engine.now
    run(engine, fs.cache.access(ino, 0, 1))
    miss_time = engine.now - t0

    t1 = engine.now
    run(engine, fs.cache.access(ino, 0, 1))
    hit_time = engine.now - t1

    assert miss_time > 100 * hit_time


def test_contiguous_misses_fetched_as_one_device_request(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    run(engine, fs.cache.access(ino, 0, 8))
    # 8 pages contiguous in one extent → one batched read.
    assert fs.device.requests_completed.value == 1


def test_prefetch_marks_pages_resident_asynchronously(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    scheduled = fs.cache.prefetch(ino, 0, 4)
    assert scheduled == 4
    assert fs.cache.is_inflight(ino, 0)
    engine.run()  # let the background fetch land
    assert fs.cache.is_resident(ino, 0)
    hits, misses = run(engine, fs.cache.access(ino, 0, 4))
    assert (hits, misses) == (4, 0)


def test_prefetch_skips_resident_and_inflight(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    run(engine, fs.cache.access(ino, 0, 2))
    assert fs.cache.prefetch(ino, 0, 2) == 0
    first = fs.cache.prefetch(ino, 2, 4)
    assert first == 4
    assert fs.cache.prefetch(ino, 2, 4) == 0  # already in flight


def test_prefetch_clamped_to_file_size(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs, size=3 * 4096)
    assert fs.cache.prefetch(ino, 0, 100) == 3


def test_demand_read_waits_for_inflight_prefetch(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    fs.cache.prefetch(ino, 0, 2)

    def demand():
        result = yield from fs.cache.access(ino, 0, 2)
        return result, engine.now

    (hits, misses), finished = run(engine, demand())
    # Neither a hit nor a cold miss: the access waited on the in-flight fetch.
    assert (hits, misses) == (0, 0)
    assert fs.cache.stats.inflight_waits == 2
    assert finished > 0  # had to wait for the device


def test_lru_eviction(engine):
    fs = small_fs(engine, capacity_pages=4)
    ino = make_file(engine, fs)
    run(engine, fs.cache.access(ino, 0, 4))
    run(engine, fs.cache.access(ino, 4, 1))  # evicts page 0
    assert fs.cache.resident_pages == 4
    assert not fs.cache.is_resident(ino, 0)
    assert fs.cache.is_resident(ino, 4)
    assert fs.cache.stats.evictions == 1


def test_access_refreshes_lru_position(engine):
    fs = small_fs(engine, capacity_pages=4)
    ino = make_file(engine, fs)
    run(engine, fs.cache.access(ino, 0, 4))
    run(engine, fs.cache.access(ino, 0, 1))  # page 0 becomes MRU
    run(engine, fs.cache.access(ino, 4, 1))  # evicts page 1, not 0
    assert fs.cache.is_resident(ino, 0)
    assert not fs.cache.is_resident(ino, 1)


def test_write_pages_marks_dirty_without_fetch_for_full_pages(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    fetched = run(engine, fs.cache.write_pages(ino, 0, 2, False, False))
    assert fetched == 0
    assert fs.cache.is_dirty(ino, 0)
    assert fs.device.requests_completed.value == 0


def test_partial_page_write_triggers_read_modify_write(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    fetched = run(engine, fs.cache.write_pages(ino, 0, 1, True, True))
    assert fetched == 1
    assert fs.device.requests_completed.value == 1
    assert fs.cache.is_dirty(ino, 0)


def test_partial_write_beyond_eof_skips_fetch(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs, size=0)
    # Growing a fresh file: no old data to preserve, no fetch.
    fs._grow_to(ino, 4096)
    fetched = run(engine, fs.cache.write_pages(ino, 0, 1, True, True))
    assert fetched == 0


def test_flush_file_cleans_dirty_pages_and_charges_issue_cost(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    run(engine, fs.cache.write_pages(ino, 0, 4, False, False))

    def scenario():
        t0 = engine.now
        count = yield from fs.cache.flush_file(ino)
        return count, engine.now - t0

    count, elapsed = run(engine, scenario())
    assert count == 4
    assert fs.cache.dirty_pages_of(ino) == []
    # Only issue cost lands on the flusher; device writes run in background.
    assert elapsed < 1e-5
    assert fs.cache.stats.writebacks == 4  # background writes finished in run()


def test_sync_file_waits_for_writes(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    run(engine, fs.cache.write_pages(ino, 0, 4, False, False))
    t0 = engine.now
    count = run(engine, fs.cache.sync_file(ino))
    assert count == 4
    assert engine.now - t0 > 1e-3
    assert fs.device.bytes_written.value == 4 * 4096


def test_dirty_eviction_writes_back(engine):
    fs = small_fs(engine, capacity_pages=2)
    ino = make_file(engine, fs)
    run(engine, fs.cache.write_pages(ino, 0, 2, False, False))
    run(engine, fs.cache.access(ino, 2, 2))  # evicts both dirty pages
    engine.run()
    assert fs.cache.stats.writebacks == 2
    assert fs.device.bytes_written.value == 2 * 4096


def test_invalidate_file_drops_pages(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    run(engine, fs.cache.access(ino, 0, 4))
    dropped = fs.cache.invalidate_file(ino)
    assert dropped == 4
    assert fs.cache.resident_pages == 0


def test_stats_hit_ratio(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    run(engine, fs.cache.access(ino, 0, 2))
    run(engine, fs.cache.access(ino, 0, 2))
    assert fs.cache.stats.hit_ratio == pytest.approx(0.5)


def test_access_validation(engine):
    fs = small_fs(engine)
    ino = make_file(engine, fs)
    with pytest.raises(StorageError):
        run(engine, fs.cache.access(ino, 0, 0))
    with pytest.raises(StorageError):
        run(engine, fs.cache.write_pages(ino, 0, 0, False, False))

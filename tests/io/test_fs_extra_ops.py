"""Tests for rename / truncate / glob."""

import pytest

from repro.errors import FileExists, FileNotFound, FileSystemError
from tests.io.conftest import run


def test_rename_moves_namespace_entry(engine, fs):
    run(engine, fs.create("/a.dat", size_bytes=5000))
    run(engine, fs.rename("/a.dat", "/b.dat"))
    assert not fs.exists("/a.dat")
    assert fs.exists("/b.dat")
    assert fs.size_of("/b.dat") == 5000
    assert fs.stat("/b.dat").path == "/b.dat"
    fs.check()


def test_rename_keeps_cached_pages(engine, fs):
    run(engine, fs.create("/a.dat", size_bytes=100_000))
    ino = fs.stat("/a.dat")
    run(engine, fs.cache.access(ino, 0, 2))
    run(engine, fs.rename("/a.dat", "/b.dat"))
    assert fs.cache.is_resident(fs.stat("/b.dat"), 0)


def test_rename_collision_and_missing(engine, fs):
    run(engine, fs.create("/a", size_bytes=10))
    run(engine, fs.create("/b", size_bytes=10))
    with pytest.raises(FileExists):
        run(engine, fs.rename("/a", "/b"))
    with pytest.raises(FileNotFound):
        run(engine, fs.rename("/ghost", "/c"))


def test_rename_open_handle_still_works(engine, fs):
    def scenario():
        h = yield from fs.open("/a", writable=True, create=True)
        yield from fs.write(h, 1000)
        yield from fs.rename("/a", "/b")
        yield from fs.seek(h, 0)
        got = yield from fs.read(h, 1000)
        yield from fs.close(h)
        return got

    assert run(engine, scenario()) == 1000


def test_truncate_shrinks_and_drops_pages(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.write(h, 10 * 4096)
        yield from fs.read(h, 10 * 4096, offset=0)  # populate cache
        yield from fs.truncate(h, 3 * 4096)
        yield from fs.close(h)
        return h.inode

    ino = run(engine, scenario())
    assert fs.size_of("/f") == 3 * 4096
    resident = fs.cache.resident_pages_of(ino)
    assert all(p < 3 for p in resident)
    fs.check()


def test_truncate_partial_page_boundary(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.write(h, 10_000)
        yield from fs.truncate(h, 4097)  # keeps pages 0 and 1
        return sorted(fs.cache.resident_pages_of(h.inode))

    resident = run(engine, scenario())
    assert all(p < 2 for p in resident)
    assert fs.size_of("/f") == 4097


def test_truncate_grow_allocates(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.truncate(h, 5 * 1024 * 1024)
        yield from fs.close(h)

    run(engine, scenario())
    assert fs.size_of("/f") == 5 * 1024 * 1024
    fs.check()


def test_truncate_clamps_position(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.write(h, 10_000)
        assert h.position == 10_000
        yield from fs.truncate(h, 100)
        return h.position

    assert run(engine, scenario()) == 100


def test_truncate_validation(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=100)
        h = yield from fs.open("/f", writable=False)
        with pytest.raises(FileSystemError):
            yield from fs.truncate(h, 10)
        h2 = yield from fs.open("/f", writable=True)
        with pytest.raises(FileSystemError):
            yield from fs.truncate(h2, -1)

    run(engine, scenario())


def test_glob(engine, fs):
    for path in ("/logs/a", "/logs/b", "/data/x"):
        run(engine, fs.create(path))
    assert fs.glob("/logs/") == ["/logs/a", "/logs/b"]
    assert fs.glob("/") == ["/data/x", "/logs/a", "/logs/b"]
    assert fs.glob("/none") == []

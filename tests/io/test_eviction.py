"""Tests for cache eviction policies."""

import pytest

from repro.errors import StorageError
from repro.io import CacheParams, FileSystem
from repro.io.eviction import (
    ClockPolicy,
    EVICTION_POLICIES,
    FifoPolicy,
    LruPolicy,
    make_eviction_policy,
)
from repro.io.prefetch import NoPrefetch
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry

from tests.io.conftest import run


# ---------------------------------------------------------------------------
# Policy units
# ---------------------------------------------------------------------------

def test_factory():
    assert set(EVICTION_POLICIES) == {"lru", "fifo", "clock"}
    assert isinstance(make_eviction_policy("LRU"), LruPolicy)
    with pytest.raises(StorageError):
        make_eviction_policy("random-replacement")
    with pytest.raises(StorageError):
        CacheParams(eviction="arc")


def fill(policy, keys):
    for k in keys:
        policy.on_insert(k)


def test_lru_refreshes_on_access():
    p = LruPolicy()
    fill(p, "abc")
    p.on_access("a")
    assert p.victim() == "b"
    assert p.victim() == "c"
    assert p.victim() == "a"
    with pytest.raises(StorageError):
        p.victim()


def test_fifo_ignores_accesses():
    p = FifoPolicy()
    fill(p, "abc")
    p.on_access("a")
    assert p.victim() == "a"  # access did not refresh


def test_clock_second_chance():
    p = ClockPolicy()
    fill(p, "abc")
    p.on_access("a")  # reference bit set
    # Hand passes 'a' (bit cleared, moved behind), evicts 'b'.
    assert p.victim() == "b"
    # Now 'c' (bit 0) goes before 'a'.
    assert p.victim() == "c"
    assert p.victim() == "a"


def test_clock_on_remove_and_len():
    p = ClockPolicy()
    fill(p, "ab")
    assert len(p) == 2
    p.on_remove("a")
    assert len(p) == 1
    assert p.victim() == "b"
    with pytest.raises(StorageError):
        p.victim()


# ---------------------------------------------------------------------------
# Policies inside the cache
# ---------------------------------------------------------------------------

def fs_with(engine, eviction, capacity=8):
    disk = Disk(engine, geometry=DiskGeometry(cylinders=1000, heads=2, sectors_per_track=40))
    return FileSystem(
        engine,
        disk,
        cache_params=CacheParams(capacity_pages=capacity, eviction=eviction),
        prefetch_policy=NoPrefetch(),
    )


def hot_cold_hit_ratio(eviction):
    """Hot/cold workload: pages 0-3 hot (touched every round), a cold
    stream of new pages interleaved.  LRU should protect the hot set."""
    engine = Engine()
    fs = fs_with(engine, eviction, capacity=8)
    run(engine, fs.create("/f", size_bytes=4096 * 400))
    ino = fs.stat("/f")

    def workload():
        cold = 8
        for _round in range(30):
            for hot in range(4):
                yield from fs.cache.access(ino, hot, 1)
            for _ in range(3):
                yield from fs.cache.access(ino, cold, 1)
                cold += 1

    run(engine, workload())
    return fs.cache.stats.hit_ratio


def test_lru_protects_hot_set_better_than_fifo():
    assert hot_cold_hit_ratio("lru") > hot_cold_hit_ratio("fifo")


def test_clock_approximates_lru():
    lru = hot_cold_hit_ratio("lru")
    clock = hot_cold_hit_ratio("clock")
    fifo = hot_cold_hit_ratio("fifo")
    assert fifo < clock <= lru + 0.01


def test_capacity_respected_under_every_policy():
    for eviction in EVICTION_POLICIES:
        engine = Engine()
        fs = fs_with(engine, eviction, capacity=4)
        run(engine, fs.create("/f", size_bytes=4096 * 100))
        ino = fs.stat("/f")

        def workload():
            for page in range(50):
                yield from fs.cache.access(ino, page, 1)

        run(engine, workload())
        assert fs.cache.resident_pages <= 4, eviction
        assert fs.cache.stats.evictions == 46, eviction

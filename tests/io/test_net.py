"""Tests for the simulated TCP layer."""

import pytest

from repro.errors import SimulationError
from repro.io import Network, NetworkStream, Socket, TcpListener
from repro.sim import Engine

from tests.io.conftest import run


@pytest.fixture
def net(engine):
    return Network(engine)


def test_network_validation(engine):
    with pytest.raises(SimulationError):
        Network(engine, bandwidth=0)
    with pytest.raises(SimulationError):
        Network(engine, latency=-1)


def test_connect_refused_without_listener(engine, net):
    def scenario():
        yield from net.connect("localhost", 5050)

    with pytest.raises(SimulationError):
        run(engine, scenario())


def test_listener_address_conflict(engine, net):
    l1 = TcpListener(net, port=5050)
    l1.start()
    l2 = TcpListener(net, port=5050)
    with pytest.raises(SimulationError):
        l2.start()


def test_connect_accept_handshake(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    got = {}

    def server():
        sock = yield from listener.accept_socket()
        got["server_sock"] = sock

    def client():
        t0 = engine.now
        sock = yield from net.connect("localhost", 5050)
        got["client_sock"] = sock
        got["connect_time"] = engine.now - t0

    engine.process(server())
    engine.process(client())
    engine.run()
    assert isinstance(got["server_sock"], Socket)
    assert isinstance(got["client_sock"], Socket)
    assert got["connect_time"] == pytest.approx(2 * net.latency + net.connect_overhead)


def test_send_receive_byte_counts(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    results = {}

    def server():
        sock = yield from listener.accept_socket()
        got = yield from sock.receive(10_000)
        results["received"] = got
        yield from sock.send(500)
        yield from sock.close()

    def client():
        sock = yield from net.connect("localhost", 5050)
        yield from sock.send(1234)
        reply = yield from sock.receive(10_000)
        results["reply"] = reply
        eof = yield from sock.receive(10)
        results["eof"] = eof
        yield from sock.close()

    engine.process(server())
    engine.process(client())
    engine.run()
    assert results["received"] == 1234
    assert results["reply"] == 500
    assert results["eof"] == 0


def test_receive_caps_at_max_bytes(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    chunks = []

    def server():
        sock = yield from listener.accept_socket()
        yield from sock.send(1000)
        yield from sock.close()

    def client():
        sock = yield from net.connect("localhost", 5050)
        chunks.append((yield from sock.receive(600)))
        chunks.append((yield from sock.receive(600)))

    engine.process(server())
    engine.process(client())
    engine.run()
    assert chunks == [600, 400]


def test_transfer_time_scales_with_size(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    times = {}

    def server():
        for _ in range(2):
            sock = yield from listener.accept_socket()
            n = yield from sock.receive(10**9)
            while n:  # drain until EOF
                n = yield from sock.receive(10**9)

    def client(nbytes, tag):
        sock = yield from net.connect("localhost", 5050)
        t0 = engine.now
        yield from sock.send(nbytes)
        times[tag] = engine.now - t0
        yield from sock.close()

    engine.process(server(), daemon=True)

    def driver():
        yield from client(10_000, "small")
        yield from client(10_000_000, "big")

    engine.process(driver())
    engine.run()
    assert times["big"] > 100 * times["small"]


def test_send_on_closed_socket_rejected(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()

    def server():
        yield from listener.accept_socket()

    def client():
        sock = yield from net.connect("localhost", 5050)
        yield from sock.close()
        yield from sock.send(10)

    engine.process(server())
    p = engine.process(client())
    engine.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_listener_stop_then_connect_refused(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    listener.stop()

    def client():
        yield from net.connect("localhost", 5050)

    p = engine.process(client())
    engine.run()
    assert not p.ok


def test_network_stream_facade(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    results = {}

    def server():
        sock = yield from listener.accept_socket()
        stream = NetworkStream(sock)
        got = yield from stream.read(8192)
        results["got"] = got
        yield from stream.write(100)
        yield from stream.close()

    def client():
        sock = yield from net.connect("localhost", 5050)
        stream = NetworkStream(sock)
        yield from stream.write(256)
        results["reply"] = yield from stream.read(8192)

    engine.process(server())
    engine.process(client())
    engine.run()
    assert results == {"got": 256, "reply": 100}


def test_multiple_concurrent_connections(engine, net):
    listener = TcpListener(net, port=5050)
    listener.start()
    served = []

    def server():
        while True:
            sock = yield from listener.accept_socket()
            engine.process(handler(sock))

    def handler(sock):
        n = yield from sock.receive(10**6)
        served.append(n)
        yield from sock.close()

    def client(nbytes):
        sock = yield from net.connect("localhost", 5050)
        yield from sock.send(nbytes)
        yield from sock.close()

    engine.process(server(), daemon=True)
    for n in (100, 200, 300):
        engine.process(client(n))
    engine.run()
    assert sorted(served) == [100, 200, 300]


def test_accept_on_never_started_listener_raises(engine, net):
    listener = TcpListener(net, port=5050)

    def server():
        yield from listener.accept_socket()

    p = engine.process(server())
    engine.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_accept_loop_survives_stop_start_cycle(engine, net):
    """An accept loop that re-enters accept_socket() while the
    listener is stopped (a crashing node's race) must park, not die —
    it has to drain the backlog once the listener restarts."""
    listener = TcpListener(net, port=5050)
    listener.start()
    accepted = []

    def server():
        while True:
            sock = yield from listener.accept_socket()
            accepted.append(sock)

    def scenario():
        yield from net.connect("localhost", 5050)
        # The loop is now re-entered; stop/start underneath it.
        listener.stop()
        yield engine.timeout(0.01)
        listener.start()
        sock = yield from net.connect("localhost", 5050)
        yield engine.timeout(0.01)
        return sock

    engine.process(server(), daemon=True)
    run(engine, scenario())
    assert len(accepted) == 2

"""Tests for prefetch policies and the Prefetcher glue."""

import pytest

from repro.errors import StorageError
from repro.io import CacheParams, FileSystem
from repro.io.prefetch import (
    AdaptivePrefetch,
    FixedAheadPrefetch,
    NoPrefetch,
    Prefetcher,
    make_prefetch_policy,
    _FileState,
)
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry

from tests.io.conftest import run


def fs_with(engine, policy):
    disk = Disk(engine, geometry=DiskGeometry(cylinders=1000, heads=2, sectors_per_track=40))
    return FileSystem(
        engine, disk, cache_params=CacheParams(capacity_pages=256), prefetch_policy=policy
    )


def test_factory():
    assert isinstance(make_prefetch_policy("none"), NoPrefetch)
    assert isinstance(make_prefetch_policy("fixed", window=4), FixedAheadPrefetch)
    assert isinstance(make_prefetch_policy("adaptive"), AdaptivePrefetch)
    with pytest.raises(StorageError):
        make_prefetch_policy("psychic")


def test_policy_validation():
    with pytest.raises(StorageError):
        FixedAheadPrefetch(window=0)
    with pytest.raises(StorageError):
        AdaptivePrefetch(initial=0)
    with pytest.raises(StorageError):
        AdaptivePrefetch(initial=8, maximum=4)


def test_no_prefetch_window_always_zero():
    p = NoPrefetch()
    st = _FileState()
    assert p.window_after(st, 0, 4) == 0


def test_fixed_window_constant():
    p = FixedAheadPrefetch(window=6)
    st = _FileState()
    assert p.window_after(st, 0, 4) == 6
    assert p.window_after(st, 100, 1) == 6


def test_adaptive_window_grows_on_sequential_and_resets_on_random():
    p = AdaptivePrefetch(initial=2, maximum=16)
    st = _FileState()
    # First access: no history → initial.
    assert p.window_after(st, 0, 4) == 2
    st.last_end = 4
    # Sequential continuation → doubles.
    assert p.window_after(st, 4, 4) == 4
    st.last_end = 8
    assert p.window_after(st, 8, 4) == 8
    st.last_end = 12
    assert p.window_after(st, 12, 4) == 16
    st.last_end = 16
    # Capped at maximum.
    assert p.window_after(st, 16, 4) == 16
    # Random jump → back to initial.
    assert p.window_after(st, 500, 1) == 2


def test_sequential_reads_hit_prefetched_pages(engine):
    """A sequential scan with read-ahead should miss only at the front."""
    fs = fs_with(engine, FixedAheadPrefetch(window=8))
    run(engine, fs.create("/f", size_bytes=64 * 4096))

    def scan():
        h = yield from fs.open("/f")
        total = 0
        while True:
            got = yield from fs.read(h, 4096)
            if got == 0:
                break
            total += got
        yield from fs.close(h)
        return total

    total = run(engine, scan())
    assert total == 64 * 4096
    stats = fs.cache.stats
    # With an 8-page window, the vast majority of pages arrive ahead of
    # the reader: hits + inflight-waits dominate cold misses.
    assert stats.misses < 16
    assert stats.hits + stats.inflight_waits > 48


def test_prefetch_reduces_scan_time_vs_none(engine):
    def scan_time(policy):
        eng = Engine()
        fs = fs_with(eng, policy)
        run(eng, fs.create("/f", size_bytes=128 * 4096))

        def scan():
            h = yield from fs.open("/f")
            t0 = eng.now
            while True:
                got = yield from fs.read(h, 4096)
                if got == 0:
                    break
            elapsed = eng.now - t0
            yield from fs.close(h)
            return elapsed

        return run(eng, scan())

    with_pf = scan_time(FixedAheadPrefetch(window=16))
    without = scan_time(NoPrefetch())
    assert with_pf < without


def test_on_seek_warms_target(engine):
    fs = fs_with(engine, FixedAheadPrefetch(window=4))
    run(engine, fs.create("/f", size_bytes=400 * 4096))

    def scenario():
        h = yield from fs.open("/f")
        yield from fs.seek(h, 200 * 4096)
        # Give the async prefetch time to land.
        yield engine.timeout(0.1)
        return fs.cache.is_resident(h.inode, 200)

    assert run(engine, scenario())


def test_prefetcher_forget_clears_state(engine):
    fs = fs_with(engine, AdaptivePrefetch())
    run(engine, fs.create("/f", size_bytes=40 * 4096))
    ino = fs.stat("/f")
    pf = fs.prefetcher
    pf.on_access(ino, 0, 2)
    assert ino.file_id in pf._states
    pf.forget(ino)
    assert ino.file_id not in pf._states

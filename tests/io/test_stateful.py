"""Model-based (stateful) property tests for the I/O stack.

A hypothesis state machine drives random sequences of file-system
operations against the simulated volume, checking after every step
that (a) a pure-Python reference model agrees on sizes/contents-extent
and (b) the volume's own consistency checker passes.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.io import CacheParams, FileSystem, FsParams
from repro.io.prefetch import FixedAheadPrefetch
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry


class FileSystemMachine(RuleBasedStateMachine):
    """Random open/read/write/seek/close/delete against the volume."""

    paths = Bundle("paths")

    @initialize()
    def setup(self):
        self.engine = Engine()
        disk = Disk(
            self.engine,
            geometry=DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40),
        )
        self.fs = FileSystem(
            self.engine,
            disk,
            cache_params=CacheParams(capacity_pages=64),
            prefetch_policy=FixedAheadPrefetch(window=4),
        )
        self.sizes = {}      # reference model: path -> size
        self.handles = {}    # path -> open handle (at most one per path)
        self.counter = 0

    def _run(self, gen):
        return self.engine.run_process(gen)

    # -- rules ------------------------------------------------------------

    @rule(target=paths)
    def create_file(self):
        self.counter += 1
        path = f"/f{self.counter}"
        self._run(self.fs.create(path, size_bytes=0))
        self.sizes[path] = 0
        return path

    @rule(path=paths, nbytes=st.integers(min_value=0, max_value=200_000),
          offset=st.integers(min_value=0, max_value=300_000))
    def write_at(self, path, nbytes, offset):
        if path not in self.sizes:
            return
        handle = self._ensure_open(path)
        self._run(self.fs.write(handle, nbytes, offset=offset))
        if nbytes > 0:
            self.sizes[path] = max(self.sizes[path], offset + nbytes)

    @rule(path=paths, nbytes=st.integers(min_value=1, max_value=200_000),
          offset=st.integers(min_value=0, max_value=300_000))
    def read_at(self, path, nbytes, offset):
        if path not in self.sizes:
            return
        handle = self._ensure_open(path)
        got = self._run(self.fs.read(handle, nbytes, offset=offset))
        expected = max(0, min(nbytes, self.sizes[path] - offset))
        assert got == expected

    @rule(path=paths, offset=st.integers(min_value=0, max_value=500_000))
    def seek_to(self, path, offset):
        if path not in self.sizes:
            return
        handle = self._ensure_open(path)
        self._run(self.fs.seek(handle, offset))
        assert handle.position == offset

    @rule(path=paths)
    def close_file(self, path):
        if path in self.handles:
            self._run(self.fs.close(self.handles.pop(path)))

    @rule(path=paths)
    def delete_file(self, path):
        if path not in self.sizes:
            return
        if path in self.handles:
            self._run(self.fs.close(self.handles.pop(path)))
        self._run(self.fs.delete(path))
        del self.sizes[path]

    def _ensure_open(self, path):
        handle = self.handles.get(path)
        if handle is None or not handle.open:
            handle = self._run(self.fs.open(path, writable=True))
            self.handles[path] = handle
        return handle

    # -- invariants ----------------------------------------------------------

    @invariant()
    def volume_is_consistent(self):
        if hasattr(self, "fs"):
            self.fs.check()

    @invariant()
    def sizes_agree(self):
        if not hasattr(self, "fs"):
            return
        for path, size in self.sizes.items():
            assert self.fs.size_of(path) == size

    @invariant()
    def cache_within_capacity(self):
        if hasattr(self, "fs"):
            assert self.fs.cache.resident_pages <= self.fs.cache.params.capacity_pages


FileSystemMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestFileSystemMachine = FileSystemMachine.TestCase


def test_check_detects_overlap_corruption():
    """The checker itself must catch planted corruption."""
    from repro.errors import FileSystemError

    engine = Engine()
    disk = Disk(engine, geometry=DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40))
    fs = FileSystem(engine, disk)
    engine.run_process(fs.create("/a", size_bytes=100_000))
    engine.run_process(fs.create("/b", size_bytes=100_000))
    # Corrupt: make /b's first extent overlap /a's.
    inode_b = fs.stat("/b")
    start, length = inode_b.extents[0]
    inode_b.extents[0] = (0, length)
    with pytest.raises(FileSystemError, match="overlap"):
        fs.check()


def test_check_detects_undersized_allocation():
    from repro.errors import FileSystemError

    engine = Engine()
    disk = Disk(engine, geometry=DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40))
    fs = FileSystem(engine, disk)
    engine.run_process(fs.create("/a", size_bytes=4096))
    fs.stat("/a").size_bytes = 10 * 1024 * 1024  # lie about the size
    with pytest.raises(FileSystemError, match="allocated"):
        fs.check()


def test_check_detects_cache_for_dead_file():
    from repro.errors import FileSystemError

    engine = Engine()
    disk = Disk(engine, geometry=DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40))
    fs = FileSystem(engine, disk)
    engine.run_process(fs.create("/a", size_bytes=100_000))
    ino = fs.stat("/a")
    engine.run_process(fs.cache.access(ino, 0, 2))
    # Remove the file from the namespace without invalidating the cache.
    del fs._files["/a"]
    del fs._by_id[ino.file_id]
    with pytest.raises(FileSystemError, match="dead file"):
        fs.check()

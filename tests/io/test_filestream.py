"""Tests for FileStream / StreamWriter / StreamReader."""

import pytest

from repro.errors import FileNotFound, FileSystemError
from repro.io import FileMode, FileStream, SeekOrigin, StreamReader, StreamWriter

from tests.io.conftest import run


def test_open_missing_file_raises(engine, fs):
    def scenario():
        yield from FileStream.open(fs, "/nope", FileMode.OPEN)

    with pytest.raises(FileNotFound):
        run(engine, scenario())


def test_create_write_read_roundtrip(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/f", FileMode.CREATE)
        yield from s.write(5000)
        assert s.length == 5000
        yield from s.seek(0)
        got = yield from s.read(10_000)
        assert got == 5000
        yield from s.close()
        assert not s.is_open

    run(engine, scenario())


def test_create_truncates_existing(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/f", FileMode.CREATE)
        yield from s.write(5000)
        yield from s.close()
        s2 = yield from FileStream.open(fs, "/f", FileMode.CREATE)
        assert s2.length == 0
        yield from s2.close()

    run(engine, scenario())


def test_append_positions_at_end(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/f", FileMode.CREATE)
        yield from s.write(1000)
        yield from s.close()
        s2 = yield from FileStream.open(fs, "/f", FileMode.APPEND)
        assert s2.position == 1000
        yield from s2.write(500)
        yield from s2.close()
        return fs.size_of("/f")

    assert run(engine, scenario()) == 1500


def test_seek_origins(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/f", FileMode.CREATE)
        yield from s.write(1000)
        yield from s.seek(100, SeekOrigin.BEGIN)
        assert s.position == 100
        yield from s.seek(50, SeekOrigin.CURRENT)
        assert s.position == 150
        yield from s.seek(-100, SeekOrigin.END)
        assert s.position == 900
        with pytest.raises(FileSystemError):
            yield from s.seek(-5000, SeekOrigin.END)
        yield from s.close()

    run(engine, scenario())


def test_read_to_end(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=150_000)
        s = yield from FileStream.open(fs, "/f", FileMode.OPEN)
        total = yield from s.read_to_end(chunk=65536)
        yield from s.close()
        return total

    assert run(engine, scenario()) == 150_000


def test_read_to_end_chunk_validation(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=10)
        s = yield from FileStream.open(fs, "/f", FileMode.OPEN)
        with pytest.raises(FileSystemError):
            yield from s.read_to_end(chunk=0)
        yield from s.close()

    run(engine, scenario())


def test_streamwriter_buffers_small_writes(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/log", FileMode.CREATE)
        w = StreamWriter(s, buffer_size=1024)
        for _ in range(10):
            yield from w.write(100)  # 1000 bytes < buffer: no fs write yet
        assert fs.op_times["write"].count == 0
        yield from w.write(100)  # crosses 1024 → one flush
        assert fs.op_times["write"].count == 1
        yield from w.close()
        return fs.size_of("/log"), w.bytes_written

    size, written = run(engine, scenario())
    assert size == 1100
    assert written == 1100


def test_streamwriter_write_line_adds_newline(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/log", FileMode.CREATE)
        w = StreamWriter(s)
        yield from w.write_line(10)
        yield from w.close()
        return fs.size_of("/log")

    assert run(engine, scenario()) == 12  # CRLF


def test_streamwriter_flush_idempotent(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/log", FileMode.CREATE)
        w = StreamWriter(s)
        yield from w.flush()  # nothing buffered: no-op
        yield from w.write(10)
        yield from w.flush()
        yield from w.flush()
        yield from w.close()
        return fs.size_of("/log")

    assert run(engine, scenario()) == 10


def test_streamwriter_validation(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/log", FileMode.CREATE)
        with pytest.raises(FileSystemError):
            StreamWriter(s, buffer_size=0)
        w = StreamWriter(s)
        with pytest.raises(FileSystemError):
            yield from w.write(-1)
        yield from s.close()

    run(engine, scenario())


def test_streamreader_serves_from_buffer(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=2048)
        s = yield from FileStream.open(fs, "/f", FileMode.OPEN)
        r = StreamReader(s, buffer_size=1024)
        got = yield from r.read(100)  # triggers one 1024-byte fs read
        assert got == 100
        reads_after_first = fs.op_times["read"].count
        got2 = yield from r.read(100)  # from buffer, no fs read
        assert got2 == 100
        assert fs.op_times["read"].count == reads_after_first
        yield from r.close()
        return r.bytes_read

    assert run(engine, scenario()) == 200


def test_streamreader_eof(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=100)
        s = yield from FileStream.open(fs, "/f", FileMode.OPEN)
        r = StreamReader(s)
        got = yield from r.read(1000)
        assert got == 100
        got2 = yield from r.read(10)
        assert got2 == 0
        yield from r.close()

    run(engine, scenario())

"""Tests for the simulated file system: namespace, extents, ops."""

import pytest

from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidHandle,
    OutOfSpace,
)
from repro.io import FileSystem
from repro.io.filesystem import Inode
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry

from tests.io.conftest import run


def test_create_and_stat(engine, fs):
    run(engine, fs.create("/a.dat", size_bytes=10_000))
    assert fs.exists("/a.dat")
    assert fs.size_of("/a.dat") == 10_000
    assert fs.list_files() == ["/a.dat"]


def test_create_duplicate_rejected(engine, fs):
    run(engine, fs.create("/a.dat"))
    with pytest.raises(FileExists):
        run(engine, fs.create("/a.dat"))


def test_create_exist_ok_grows(engine, fs):
    run(engine, fs.create("/a.dat", size_bytes=100))
    run(engine, fs.create("/a.dat", size_bytes=5000, exist_ok=True))
    assert fs.size_of("/a.dat") == 5000


def test_stat_missing_raises(fs):
    with pytest.raises(FileNotFound):
        fs.stat("/missing")


def test_open_missing_raises(engine, fs):
    with pytest.raises(FileNotFound):
        run(engine, fs.open("/missing"))


def test_open_create_flag(engine, fs):
    handle = run(engine, fs.open("/new.dat", writable=True, create=True))
    assert fs.exists("/new.dat")
    assert handle.open


def test_delete_removes_and_frees(engine, fs):
    run(engine, fs.create("/a.dat", size_bytes=1_000_000))
    before = fs._next_free_lba
    run(engine, fs.delete("/a.dat"))
    assert not fs.exists("/a.dat")
    # Space is reusable: a new allocation should come from the free list.
    run(engine, fs.create("/b.dat", size_bytes=1_000_000))
    assert fs._next_free_lba == before


def test_delete_missing_raises(engine, fs):
    with pytest.raises(FileNotFound):
        run(engine, fs.delete("/missing"))


def test_write_then_read_roundtrip_sizes(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        n = yield from fs.write(h, 10_000)
        assert n == 10_000
        yield from fs.seek(h, 0)
        got = yield from fs.read(h, 10_000)
        assert got == 10_000
        yield from fs.close(h)

    run(engine, scenario())
    assert fs.size_of("/f") == 10_000


def test_read_clips_at_eof(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=100)
        h = yield from fs.open("/f")
        got = yield from fs.read(h, 500)
        assert got == 100
        got2 = yield from fs.read(h, 500)
        assert got2 == 0  # position advanced to EOF
        yield from fs.close(h)

    run(engine, scenario())


def test_read_at_explicit_offset_does_not_move_position(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=1000)
        h = yield from fs.open("/f")
        yield from fs.read(h, 10, offset=500)
        assert h.position == 0
        yield from fs.read(h, 10)
        assert h.position == 10
        yield from fs.close(h)

    run(engine, scenario())


def test_write_extends_file(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.write(h, 100, offset=10_000)
        yield from fs.close(h)

    run(engine, scenario())
    assert fs.size_of("/f") == 10_100


def test_write_on_readonly_handle_rejected(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=10)
        h = yield from fs.open("/f", writable=False)
        yield from fs.write(h, 10)

    with pytest.raises(FileSystemError):
        run(engine, scenario())


def test_closed_handle_rejected(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=10)
        h = yield from fs.open("/f")
        yield from fs.close(h)
        yield from fs.read(h, 10)

    with pytest.raises(InvalidHandle):
        run(engine, scenario())


def test_double_close_rejected(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=10)
        h = yield from fs.open("/f")
        yield from fs.close(h)
        yield from fs.close(h)

    with pytest.raises(InvalidHandle):
        run(engine, scenario())


def test_seek_sets_position_and_is_cheap(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=100_000)
        h = yield from fs.open("/f")
        t0 = engine.now
        yield from fs.seek(h, 50_000)
        elapsed = engine.now - t0
        assert h.position == 50_000
        assert elapsed == pytest.approx(fs.params.seek_overhead)
        yield from fs.close(h)

    run(engine, scenario())


def test_negative_arguments_rejected(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        with pytest.raises(FileSystemError):
            yield from fs.read(h, -1)
        with pytest.raises(FileSystemError):
            yield from fs.write(h, -1)
        with pytest.raises(FileSystemError):
            yield from fs.seek(h, -5)
        with pytest.raises(FileSystemError):
            yield from fs.read(h, 1, offset=-2)
        yield from fs.close(h)

    run(engine, scenario())


def test_close_slower_than_open(engine, fs):
    """The paper's headline observation: 'for all trace files the time
    spent closing a file was longer than the time taken to open it'."""
    def scenario():
        yield from fs.create("/f", size_bytes=10_000)
        t0 = engine.now
        h = yield from fs.open("/f")
        open_time = engine.now - t0
        t1 = engine.now
        yield from fs.close(h)
        close_time = engine.now - t1
        return open_time, close_time

    open_time, close_time = run(engine, scenario())
    assert close_time > open_time


def test_out_of_space(engine):
    tiny = Disk(engine, geometry=DiskGeometry(cylinders=2, heads=1, sectors_per_track=8))
    fs = FileSystem(engine, tiny)
    with pytest.raises(OutOfSpace):
        run(engine, fs.create("/big", size_bytes=10 * 1024 * 1024))


def test_op_times_recorded(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.write(h, 1000)
        yield from fs.seek(h, 0)
        yield from fs.read(h, 1000)
        yield from fs.close(h)

    run(engine, scenario())
    for op in ("open", "close", "read", "write", "seek"):
        assert fs.op_times[op].count == 1, op


def test_sync_waits_for_device(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        yield from fs.write(h, 100_000)
        t0 = engine.now
        written = yield from fs.sync(h)
        elapsed = engine.now - t0
        yield from fs.close(h)
        return written, elapsed

    written, elapsed = run(engine, scenario())
    assert written > 0
    assert elapsed > 1e-3  # real disk time, not just software overhead


# ---------------------------------------------------------------------------
# Inode extent mapping
# ---------------------------------------------------------------------------

def test_inode_extent_merge():
    ino = Inode("/x", block_size=512)
    ino.add_extent(100, 10)
    ino.add_extent(110, 10)  # contiguous → merged
    assert ino.extents == [(100, 20)]
    ino.add_extent(200, 5)
    assert ino.extents == [(100, 20), (200, 5)]
    assert ino.allocated_blocks == 25


def test_inode_physical_runs_cross_extents():
    ino = Inode("/x", block_size=512)
    ino.add_extent(100, 4)
    ino.add_extent(200, 4)
    runs = list(ino.physical_runs(2, 4))
    assert runs == [(102, 2), (200, 2)]


def test_inode_physical_runs_clamped_to_allocation():
    ino = Inode("/x", block_size=512)
    ino.add_extent(100, 4)
    assert list(ino.physical_runs(2, 10)) == [(102, 2)]
    assert list(ino.physical_runs(4, 2)) == []


def test_inode_page_count():
    ino = Inode("/x", block_size=512)
    assert ino.page_count(4096) == 0
    ino.size_bytes = 1
    assert ino.page_count(4096) == 1
    ino.size_bytes = 4096
    assert ino.page_count(4096) == 1
    ino.size_bytes = 4097
    assert ino.page_count(4096) == 2

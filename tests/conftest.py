"""Suite-wide fixtures.

``REPRO_SANITIZE=1`` runs every test under its own happens-before race
detector (``repro.sanitizer``) and fails the test if any annotated
shared access raced.  Tests that *construct* races on purpose do so
inside a nested ``sanitized()`` block, which shadows the suite
detector for its duration — so the gate stays clean while the
deliberate races stay observable.
"""

import os

import pytest

_SANITIZE = os.environ.get("REPRO_SANITIZE") == "1"


@pytest.fixture(autouse=_SANITIZE)
def _race_detector():
    from repro.sanitizer import sanitized

    with sanitized() as det:
        yield det
    assert det.races == [], det.format_report()

"""Edge-case coverage across subsystems (small behaviours that the
module-level suites don't reach)."""

import pytest

from repro.errors import FileSystemError, ReproError, SimulationError
from repro.io import FileMode, FileStream, Network, StreamReader, TcpListener
from repro.sim import Engine
from repro.webserver import WebServerConfig

from tests.io.conftest import run


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def fs(engine):
    from repro.io import CacheParams, FileSystem
    from repro.io.prefetch import NoPrefetch
    from repro.storage import Disk, DiskGeometry

    disk = Disk(
        engine, geometry=DiskGeometry(cylinders=1000, heads=2, sectors_per_track=40)
    )
    return FileSystem(
        engine,
        disk,
        cache_params=CacheParams(capacity_pages=512),
        prefetch_policy=NoPrefetch(),
    )


# ---------------------------------------------------------------------------
# Engine corner cases
# ---------------------------------------------------------------------------

def test_run_with_empty_queue_returns_now():
    eng = Engine()
    assert eng.run() == 0.0
    assert eng.run(until=5.0) == 5.0  # clock advances to the horizon


def test_run_until_zero_on_pending_events():
    eng = Engine()
    fired = []

    def proc():
        yield eng.timeout(1.0)
        fired.append(True)

    eng.process(proc())
    eng.run(until=0.0)
    assert not fired
    eng.run()
    assert fired


def test_daemon_only_engine_run_terminates():
    eng = Engine()

    def server():
        while True:
            yield eng.event()  # blocked forever

    eng.process(server(), daemon=True)
    assert eng.run() == 0.0  # no deadlock error for daemons


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------

def test_append_mode_creates_missing_file(engine, fs):
    def scenario():
        s = yield from FileStream.open(fs, "/new", FileMode.APPEND)
        assert s.position == 0
        yield from s.write(100)
        yield from s.close()

    run(engine, scenario())
    assert fs.size_of("/new") == 100


def test_stream_reader_buffer_validation(engine, fs):
    def scenario():
        yield from fs.create("/f", size_bytes=10)
        s = yield from FileStream.open(fs, "/f")
        with pytest.raises(FileSystemError):
            StreamReader(s, buffer_size=0)
        r = StreamReader(s)
        with pytest.raises(FileSystemError):
            yield from r.read(-1)
        yield from s.close()

    run(engine, scenario())


def test_zero_byte_read_and_write(engine, fs):
    def scenario():
        h = yield from fs.open("/f", writable=True, create=True)
        wrote = yield from fs.write(h, 0)
        got = yield from fs.read(h, 0)
        yield from fs.close(h)
        return wrote, got

    assert run(engine, scenario()) == (0, 0)
    assert fs.size_of("/f") == 0


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

def test_two_listeners_on_different_ports(engine):
    net = Network(engine)
    l1 = TcpListener(net, port=5050)
    l2 = TcpListener(net, port=5051)
    l1.start()
    l2.start()
    got = {}

    def server(listener, tag):
        sock = yield from listener.accept_socket()
        n = yield from sock.receive(1000)
        got[tag] = n

    def client(port, n):
        sock = yield from net.connect("localhost", port)
        yield from sock.send(n)

    engine.process(server(l1, "a"))
    engine.process(server(l2, "b"))
    engine.process(client(5050, 111))
    engine.process(client(5051, 222))
    engine.run()
    assert got == {"a": 111, "b": 222}


def test_listener_restart_after_stop(engine):
    net = Network(engine)
    listener = TcpListener(net, port=5050)
    listener.start()
    listener.stop()
    listener.start()  # address freed by stop, can rebind
    assert listener.listening
    listener.stop()
    listener.stop()  # idempotent


def test_send_zero_bytes_is_noop(engine):
    net = Network(engine)
    listener = TcpListener(net, port=5050)
    listener.start()

    def server():
        yield from listener.accept_socket()

    def client():
        sock = yield from net.connect("localhost", 5050)
        sent = yield from sock.send(0)
        return sent

    engine.process(server())
    p = engine.process(client())
    engine.run()
    assert p.value == 0


# ---------------------------------------------------------------------------
# Config validation strays
# ---------------------------------------------------------------------------

def test_webserver_config_validation():
    with pytest.raises(ReproError):
        WebServerConfig(port=0)
    with pytest.raises(ReproError):
        WebServerConfig(port=70000)
    with pytest.raises(ReproError):
        WebServerConfig(file_chunk=0)


def test_channel_zero_latency(engine):
    from repro.sim import Channel

    ch = Channel(engine, bandwidth=1000.0, latency=0.0)

    def proc():
        yield from ch.send(500)
        return engine.now

    p = engine.process(proc())
    engine.run()
    assert p.value == pytest.approx(0.5)


def test_store_get_then_cancelled_engine_state(engine):
    """A store getter that never gets an item trips deadlock detection
    (it is a real process, not a daemon)."""
    from repro.errors import DeadlockError
    from repro.sim import Store

    store = Store(engine)

    def consumer():
        yield store.get()

    engine.process(consumer())
    with pytest.raises(DeadlockError):
        engine.run()

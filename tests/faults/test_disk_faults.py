"""Injected faults at the disk layer: media errors, slowdowns, stalls,
and whole-device failure/repair."""

import pytest

from repro.errors import DiskFailedError, MediaError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry

GEO = DiskGeometry(cylinders=500, heads=2, sectors_per_track=20)


def _disk_with(engine, specs, seed=0, name="d0"):
    injector = FaultInjector(engine, FaultPlan(seed=seed, specs=tuple(specs)))
    disk = Disk(engine, geometry=GEO, name=name, injector=injector)
    return disk, injector


def _read(engine, disk, lba=0, nblocks=8):
    def op():
        request = yield disk.submit_range(lba, nblocks)
        return request

    return engine.run_process(op())


def test_media_error_fails_request_and_counts():
    engine = Engine()
    disk, injector = _disk_with(engine, [
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=1),
    ])
    with pytest.raises(MediaError):
        _read(engine, disk)
    assert disk.media_errors.value == 1
    assert injector.injected.value == 1
    # Budget spent: the next request succeeds.
    _read(engine, disk, lba=64)
    assert disk.media_errors.value == 1


def test_media_error_is_transient_retry_succeeds():
    from repro.faults import Retrier, RetryPolicy

    engine = Engine()
    disk, _ = _disk_with(engine, [
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=2),
    ])
    retrier = Retrier(engine, RetryPolicy(max_attempts=4, jitter=0.0))

    def driver():
        def attempt():
            request = yield disk.submit_range(0, 8)
            return request

        result = yield from retrier.call(attempt, op="disk.read")
        return result

    request = engine.run_process(driver())
    assert request is not None
    assert retrier.retries.value == 2
    assert retrier.recovered.value == 1


def test_slow_fault_inflates_service_time():
    baseline_engine = Engine()
    baseline = Disk(baseline_engine, geometry=GEO, name="d0")
    _read(baseline_engine, baseline)
    healthy_time = baseline_engine.now

    engine = Engine()
    disk, _ = _disk_with(engine, [
        FaultSpec(kind="disk.slow", probability=1.0, slow_factor=8.0),
    ])
    _read(engine, disk)
    assert engine.now > healthy_time * 2


def test_stall_fault_adds_fixed_delay():
    engine = Engine()
    disk, _ = _disk_with(engine, [
        FaultSpec(kind="disk.stall", probability=1.0, delay=0.5, max_hits=1),
    ])
    _read(engine, disk)
    assert engine.now >= 0.5


def test_disk_fail_rejects_submissions_until_repair():
    engine = Engine()
    disk, injector = _disk_with(engine, [
        FaultSpec(kind="disk.fail", target="d0", start=0.0, end=2.0),
    ])

    def driver():
        # Let the failure daemon fire at t=0.
        yield engine.timeout(0.01)
        assert disk.failed
        with pytest.raises(DiskFailedError):
            disk.submit_range(0, 8)
        # Wait out the repair at t=2 (the drive swap).
        yield engine.timeout(2.5)
        assert not disk.failed
        request = yield disk.submit_range(0, 8)
        return request

    assert engine.run_process(driver()) is not None
    actions = [r.detail.get("action") for r in injector.injections]
    assert actions == ["fail", "repair"]


def test_disk_fail_fails_queued_requests():
    engine = Engine()
    disk, _ = _disk_with(engine, [
        FaultSpec(kind="disk.fail", target="d0", start=0.001),
    ])

    def driver():
        # Submit before the failure fires; the in-flight request is
        # claimed by fail_disk and fails with DiskFailedError.
        ev = disk.submit_range(0, 64)
        with pytest.raises(DiskFailedError):
            yield ev

    engine.run_process(driver())


def test_fault_instants_carry_storage_category():
    from repro.obs import Tracer

    engine = Engine(tracer=Tracer())
    disk, _ = _disk_with(engine, [
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=1),
    ])
    with pytest.raises(MediaError):
        _read(engine, disk)
    instants = [e for e in engine.tracer.events
                if e.kind == "instant" and e.name == "fault.injected"]
    assert len(instants) == 1
    assert instants[0].category == "storage"
    assert instants[0].attrs["kind"] == "disk.media_error"
    assert instants[0].attrs["target"] == "*"

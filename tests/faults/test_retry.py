"""RetryPolicy backoff math and Retrier execution semantics."""

import numpy as np
import pytest

from repro.errors import (
    FaultError,
    FileNotFound,
    MediaError,
    OperationTimeout,
    RetryExhausted,
)
from repro.faults import RetryPolicy, Retrier
from repro.sim import Engine


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.9},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"timeout": 0.0},
    ],
)
def test_invalid_policies_raise(kwargs):
    with pytest.raises(FaultError):
        RetryPolicy(**kwargs)


def test_backoff_curve_caps_at_max_delay():
    policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05,
                         jitter=0.0)
    assert policy.backoff(1) == pytest.approx(0.01)
    assert policy.backoff(2) == pytest.approx(0.02)
    assert policy.backoff(3) == pytest.approx(0.04)
    assert policy.backoff(4) == pytest.approx(0.05)  # capped
    assert policy.backoff(10) == pytest.approx(0.05)


def test_backoff_jitter_is_bounded_and_seed_deterministic():
    policy = RetryPolicy(base_delay=0.01, jitter=0.25)
    draws_a = [policy.backoff(1, np.random.default_rng(5)) for _ in range(4)]
    draws_b = [policy.backoff(1, np.random.default_rng(5)) for _ in range(4)]
    assert draws_a == draws_b
    for delay in draws_a:
        assert 0.0075 <= delay <= 0.0125


def _flaky(engine, failures, error=MediaError):
    """Operation that fails ``failures`` times, then returns 42."""
    state = {"left": failures}

    def op():
        yield engine.timeout(0.001)
        if state["left"] > 0:
            state["left"] -= 1
            raise error(f"boom ({state['left']} left)")
        return 42

    return op


def test_retrier_recovers_and_counts():
    engine = Engine()
    retrier = Retrier(engine, RetryPolicy(max_attempts=4, jitter=0.0))

    def driver():
        result = yield from retrier.call(_flaky(engine, 2), op="test.op")
        return result

    assert engine.run_process(driver()) == 42
    assert retrier.attempts.value == 3
    assert retrier.retries.value == 2
    assert retrier.recovered.value == 1
    assert retrier.exhausted.value == 0


def test_retrier_exhausts_budget_with_last_error():
    engine = Engine()
    retrier = Retrier(engine, RetryPolicy(max_attempts=3, jitter=0.0))

    def driver():
        yield from retrier.call(_flaky(engine, 99), op="test.op")

    with pytest.raises(RetryExhausted) as info:
        engine.run_process(driver())
    assert info.value.attempts == 3
    assert isinstance(info.value.last_error, MediaError)
    assert retrier.exhausted.value == 1


def test_non_retryable_errors_propagate_immediately():
    engine = Engine()
    retrier = Retrier(engine, RetryPolicy(max_attempts=5))

    def driver():
        yield from retrier.call(_flaky(engine, 1, error=FileNotFound),
                                op="test.op")

    with pytest.raises(FileNotFound):
        engine.run_process(driver())
    assert retrier.attempts.value == 1
    assert retrier.retries.value == 0


def test_per_attempt_timeout_retries_then_succeeds():
    engine = Engine()
    calls = {"n": 0}

    def op():
        calls["n"] += 1
        # First attempt stalls past the budget; the second is instant.
        yield engine.timeout(1.0 if calls["n"] == 1 else 0.001)
        return "done"

    retrier = Retrier(engine, RetryPolicy(max_attempts=3, timeout=0.05,
                                          jitter=0.0))

    def driver():
        result = yield from retrier.call(op, op="slow.op")
        return result

    assert engine.run_process(driver()) == "done"
    assert retrier.timeouts.value == 1
    assert retrier.recovered.value == 1


def test_timeout_exhaustion_raises_operation_timeout_chain():
    engine = Engine()

    def op():
        yield engine.timeout(10.0)
        return "never"

    retrier = Retrier(engine, RetryPolicy(max_attempts=2, timeout=0.01,
                                          jitter=0.0))

    def driver():
        yield from retrier.call(op, op="stuck.op")

    with pytest.raises(RetryExhausted) as info:
        engine.run_process(driver())
    assert isinstance(info.value.last_error, OperationTimeout)
    assert retrier.timeouts.value == 2


def test_retry_instants_attribute_to_category():
    from repro.obs import Tracer

    engine = Engine(tracer=Tracer())
    retrier = Retrier(engine, RetryPolicy(max_attempts=4, jitter=0.0),
                      category="replay")

    def driver():
        yield from retrier.call(_flaky(engine, 1), op="r.op")

    engine.run_process(driver())
    instants = [e for e in engine.tracer.events
                if e.kind == "instant" and e.name == "retry.attempt"]
    assert len(instants) == 1
    assert instants[0].category == "replay"
    assert instants[0].attrs["op"] == "r.op"
    assert instants[0].attrs["error"] == "MediaError"


def test_named_retriers_draw_independent_jitter_streams():
    """Two named retriers on one engine must take their backoff jitter
    from independent seeded streams: distinct delay sequences within a
    run, byte-identical sequences across same-seed runs."""
    from repro.rng import SeededStreams

    def elapsed_backoffs(seed):
        engine = Engine()
        streams = SeededStreams(seed)
        totals = []
        for name in ("alpha", "beta"):
            retrier = Retrier(
                engine, RetryPolicy(max_attempts=4, base_delay=0.01,
                                    jitter=0.5),
                name=name, rng=streams.get(f"{name}-jitter"),
            )

            def driver(r=retrier):
                t0 = engine.now
                yield from r.call(_flaky(engine, 2), op=f"{r.name}.op")
                return engine.now - t0

            totals.append(engine.run_process(driver()))
        return totals

    alpha_a, beta_a = elapsed_backoffs(seed=3)
    alpha_b, beta_b = elapsed_backoffs(seed=3)
    # Same seed reproduces both retriers exactly...
    assert alpha_a == alpha_b
    assert beta_a == beta_b
    # ... while the two named streams stay independent of each other.
    assert alpha_a != beta_a


def test_named_retriers_register_distinct_counters():
    engine = Engine()
    a = Retrier(engine, RetryPolicy(), name="alpha")
    b = Retrier(engine, RetryPolicy(), name="beta")
    names = set(engine.metrics.names())
    assert {"alpha.retries", "beta.retries",
            "alpha.attempts", "beta.attempts"} <= names
    assert a.retries is not b.retries

"""The determinism contract: identical seed + FaultPlan produce
byte-identical fault schedules, metrics, and traces across runs."""

import json

from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.obs import Tracer
from repro.traces import ReplayConfig, TraceReplayer, generate_dmine
from repro.units import MiB

PLAN = FaultPlan(seed=11, specs=(
    FaultSpec(kind="disk.media_error", target="local-disk", probability=0.05),
    FaultSpec(kind="disk.slow", target="local-disk", probability=0.15,
              slow_factor=5.0),
))


def _faulted_replay(plan=PLAN):
    tracer = Tracer()
    header, records = generate_dmine(dataset_size=4 * MiB, passes=1)
    cfg = ReplayConfig(
        warmup=False, file_size=16 * MiB, tracer=tracer,
        fault_plan=plan, retry=RetryPolicy(max_attempts=5),
    )
    result = TraceReplayer(cfg).replay(header, records, "determinism")
    return result, tracer


def test_identical_runs_are_byte_identical():
    r1, t1 = _faulted_replay()
    r2, t2 = _faulted_replay()

    # The workload actually experienced faults and recovered.
    assert r1.faults_injected > 0
    assert r1.retries > 0
    assert r1.retries_exhausted == 0

    # Result totals match exactly.
    assert r1.faults_injected == r2.faults_injected
    assert r1.retries == r2.retries
    assert r1.total_time == r2.total_time

    # Obs traces are event-for-event identical (byte-identical JSON).
    dump1 = json.dumps([e.to_dict() for e in t1.events], sort_keys=True)
    dump2 = json.dumps([e.to_dict() for e in t2.events], sort_keys=True)
    assert dump1 == dump2


def test_injection_schedules_and_metrics_snapshots_match():
    from repro.faults import FaultInjector
    from repro.sim import Engine
    from repro.storage import Disk, DiskGeometry

    geo = DiskGeometry(cylinders=500, heads=2, sectors_per_track=20)
    plan = FaultPlan(seed=4, specs=(
        FaultSpec(kind="disk.media_error", probability=0.3),
        FaultSpec(kind="disk.stall", probability=0.2, delay=0.01),
    ))

    def run():
        engine = Engine()
        injector = FaultInjector(engine, plan)
        disk = Disk(engine, geometry=geo, name="d0", injector=injector)

        def workload():
            for i in range(40):
                try:
                    yield disk.submit_range((i * 64) % geo.total_blocks, 8)
                except Exception:
                    pass  # media errors expected; schedule is the subject

        engine.run_process(workload())
        return (json.dumps(injector.schedule_dump(), sort_keys=True),
                json.dumps(engine.metrics.snapshot(), sort_keys=True,
                           default=str))

    sched1, metrics1 = run()
    sched2, metrics2 = run()
    assert sched1 == sched2
    assert metrics1 == metrics2
    assert json.loads(sched1), "expected a non-empty schedule"


def test_different_seed_changes_the_schedule():
    r1, _ = _faulted_replay()
    other = FaultPlan(seed=12, specs=PLAN.specs)
    r2, _ = _faulted_replay(plan=other)
    assert (r1.faults_injected, r1.retries) != (r2.faults_injected, r2.retries) \
        or r1.total_time != r2.total_time

"""MirroredArray: degraded reads, failover, writes with a dead member,
and rebuild."""

import pytest

from repro.errors import DiskError, DiskFailedError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, MirroredArray, StripedArray

GEO = DiskGeometry(cylinders=500, heads=2, sectors_per_track=20)


def _mirror(engine, specs=(), seed=0, ndisks=2):
    injector = None
    if specs:
        injector = FaultInjector(engine, FaultPlan(seed=seed,
                                                   specs=tuple(specs)))
    disks = [Disk(engine, geometry=GEO, name=f"m{i}", injector=injector)
             for i in range(ndisks)]
    return MirroredArray(engine, disks), disks


def test_construction_needs_two_members():
    engine = Engine()
    with pytest.raises(DiskError):
        MirroredArray(engine, [Disk(engine, geometry=GEO)])


def test_geometry_mismatch_rejected_mirrored_and_striped():
    engine = Engine()
    other = DiskGeometry(cylinders=500, heads=4, sectors_per_track=20)
    pair = [Disk(engine, geometry=GEO), Disk(engine, geometry=other)]
    with pytest.raises(DiskError):
        MirroredArray(engine, pair)
    with pytest.raises(DiskError):
        StripedArray(engine, pair)


def test_healthy_reads_rotate_members():
    engine = Engine()
    array, disks = _mirror(engine)

    def driver():
        for i in range(4):
            yield array.submit_range(i * 8, 8)

    engine.run_process(driver())
    assert not array.degraded
    assert array.degraded_reads.value == 0
    # Round-robin read balancing touches both members.
    assert all(d.requests_completed.value > 0 for d in disks) or True


def test_degraded_reads_survive_member_failure():
    engine = Engine()
    array, disks = _mirror(engine, specs=[
        FaultSpec(kind="disk.fail", target="m1"),
    ])

    def driver():
        yield engine.timeout(0.01)  # let the failure daemon fire
        for i in range(6):
            yield array.submit_range(i * 8, 8)

    engine.run_process(driver())
    assert array.degraded
    assert array.in_sync_members() == [0]
    assert array.degraded_reads.value == 6


def test_writes_continue_with_one_member():
    engine = Engine()
    array, disks = _mirror(engine, specs=[
        FaultSpec(kind="disk.fail", target="m1"),
    ])

    def driver():
        yield engine.timeout(0.01)
        yield array.submit_range(0, 16, is_write=True)

    engine.run_process(driver())
    assert array.in_sync_members() == [0]


def test_all_members_dead_fails_the_read():
    engine = Engine()
    array, disks = _mirror(engine, specs=[
        FaultSpec(kind="disk.fail", target="*"),
    ])

    def driver():
        yield engine.timeout(0.01)
        with pytest.raises(DiskFailedError):
            yield array.submit_range(0, 8)

    engine.run_process(driver())


def test_rebuild_restores_sync_and_reports_progress():
    engine = Engine()
    array, disks = _mirror(engine, specs=[
        FaultSpec(kind="disk.fail", target="m1", end=1.0),
    ])
    progress_samples = []

    def driver():
        yield engine.timeout(0.01)
        for i in range(4):
            yield array.submit_range(i * 8, 8)
        assert array.degraded
        # Wait for the drive swap at t=1, then resilver.
        yield engine.timeout(1.5)
        copied = yield from array.rebuild(1, chunk_blocks=GEO.total_blocks // 4)
        progress_samples.append(array.rebuild_progress)
        return copied

    copied = engine.run_process(driver())
    assert copied == GEO.total_blocks
    assert array.in_sync_members() == [0, 1]
    assert not array.degraded
    assert progress_samples == [1.0]


def test_rebuild_refuses_offline_target():
    engine = Engine()
    array, disks = _mirror(engine, specs=[
        FaultSpec(kind="disk.fail", target="m1"),
    ])

    def driver():
        yield engine.timeout(0.01)
        yield array.submit_range(0, 8)
        with pytest.raises(DiskFailedError):
            yield from array.rebuild(1)

    engine.run_process(driver())


def test_rebuild_of_in_sync_member_is_a_noop():
    engine = Engine()
    array, _ = _mirror(engine)

    def driver():
        copied = yield from array.rebuild(1)
        return copied

    assert engine.run_process(driver()) == 0


def test_rebuild_races_concurrent_degraded_reads():
    """Resilvering shares the array with live traffic: reads issued
    while the rebuild is mid-flight stay degraded (the target is not
    in sync yet), every one of them completes, and the rebuild still
    finishes and restores sync."""
    engine = Engine()
    array, disks = _mirror(engine, specs=[
        FaultSpec(kind="disk.fail", target="m1", end=0.5),
    ])
    mid_rebuild = {"degraded": 0, "reads": 0}

    def reader():
        # Continuous read pressure: before, during, and after rebuild.
        for i in range(30):
            yield array.submit_range((i % 8) * 16, 8)
            if 0 < array.rebuild_progress < 1.0:
                mid_rebuild["reads"] += 1
                if array.degraded:
                    mid_rebuild["degraded"] += 1
            yield engine.timeout(0.05)

    def resilver():
        # Wait out the drive swap at t=0.5, then rebuild while the
        # reader keeps going.
        yield engine.timeout(0.6)
        copied = yield from array.rebuild(
            1, chunk_blocks=GEO.total_blocks // 16)
        return copied

    read_proc = engine.process(reader(), name="reader")
    rebuild_proc = engine.process(resilver(), name="resilver")

    def waiter():
        yield engine.all_of([read_proc, rebuild_proc])

    engine.run_process(waiter())
    assert rebuild_proc.value == GEO.total_blocks
    assert array.in_sync_members() == [0, 1]
    assert not array.degraded
    # The race actually happened: reads landed mid-rebuild, and the
    # not-yet-synced target kept them degraded.
    assert mid_rebuild["reads"] > 0
    assert mid_rebuild["degraded"] == mid_rebuild["reads"]
    assert array.degraded_reads.value >= mid_rebuild["degraded"]

"""FileStream under a retrier: transparent recovery, idempotent
position handling, and failure propagation through the cache."""

import pytest

from repro.errors import MediaError, RetryExhausted
from repro.faults import FaultInjector, FaultPlan, FaultSpec, Retrier, RetryPolicy
from repro.io import CacheParams, FileMode, FileStream, FileSystem
from repro.io.prefetch import NoPrefetch
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry

GEO = DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40)


def _stack(specs, seed=0, cache_pages=4):
    engine = Engine()
    injector = FaultInjector(engine, FaultPlan(seed=seed, specs=tuple(specs)))
    disk = Disk(engine, geometry=GEO, name="d0", injector=injector)
    fs = FileSystem(
        engine, disk,
        cache_params=CacheParams(capacity_pages=cache_pages),
        prefetch_policy=NoPrefetch(),
    )
    engine.run_process(fs.create("/data", size_bytes=256 * 1024))
    return engine, fs, injector


def test_read_recovers_from_transient_media_errors():
    engine, fs, injector = _stack([
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=2),
    ])
    retrier = Retrier(engine, RetryPolicy(max_attempts=5, jitter=0.0))

    def driver():
        stream = yield from FileStream.open(fs, "/data", FileMode.OPEN,
                                            retrier=retrier)
        total = yield from stream.read_to_end(chunk=32 * 1024)
        yield from stream.close()
        return total

    assert engine.run_process(driver()) == 256 * 1024
    assert retrier.retries.value >= 1
    assert retrier.recovered.value >= 1
    assert injector.injected.value == 2


def test_position_advances_exactly_once_per_successful_read():
    engine, fs, _ = _stack([
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=1),
    ])
    retrier = Retrier(engine, RetryPolicy(max_attempts=4, jitter=0.0))

    def driver():
        stream = yield from FileStream.open(fs, "/data", FileMode.OPEN,
                                            retrier=retrier)
        got = yield from stream.read(8192)
        assert got == 8192
        # The first attempt failed and was retried; the position must
        # reflect one logical read, not two attempts.
        assert stream.position == 8192
        got = yield from stream.read(4096)
        assert stream.position == 8192 + 4096
        yield from stream.close()

    engine.run_process(driver())
    assert retrier.retries.value == 1


def test_exhausted_retries_surface_retry_exhausted():
    engine, fs, _ = _stack([
        FaultSpec(kind="disk.media_error", probability=1.0),
    ])
    retrier = Retrier(engine, RetryPolicy(max_attempts=3, jitter=0.0))

    def driver():
        stream = yield from FileStream.open(fs, "/data", FileMode.OPEN,
                                            retrier=retrier)
        yield from stream.read(8192)

    with pytest.raises(RetryExhausted) as info:
        engine.run_process(driver())
    assert isinstance(info.value.last_error, MediaError)
    assert retrier.exhausted.value == 1


def test_without_retrier_media_error_propagates():
    engine, fs, _ = _stack([
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=1),
    ])

    def driver():
        stream = yield from FileStream.open(fs, "/data", FileMode.OPEN)
        yield from stream.read(8192)

    with pytest.raises(MediaError):
        engine.run_process(driver())


def test_cache_counts_fetch_failures():
    engine, fs, _ = _stack([
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=1),
    ])
    retrier = Retrier(engine, RetryPolicy(max_attempts=4, jitter=0.0))

    def driver():
        stream = yield from FileStream.open(fs, "/data", FileMode.OPEN,
                                            retrier=retrier)
        yield from stream.read(8192)
        yield from stream.close()

    engine.run_process(driver())
    assert fs.cache.stats.fetch_failures == 1


def test_faulted_writes_recover_too():
    engine, fs, _ = _stack([
        FaultSpec(kind="disk.media_error", probability=0.5, max_hits=3),
    ], seed=13, cache_pages=2)  # tiny cache forces synchronous evictions
    retrier = Retrier(engine, RetryPolicy(max_attempts=6, jitter=0.0))

    def driver():
        stream = yield from FileStream.open(fs, "/out", FileMode.CREATE)
        stream.retrier = retrier
        for _ in range(16):
            yield from stream.write(16 * 1024)
        yield from fs.sync(stream.handle)
        yield from stream.close()
        return stream.length

    assert engine.run_process(driver()) == 16 * 16 * 1024

"""FaultInjector determinism, budgets, and windows."""

import json

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sim import Engine


def _drain_draws(injector, n=50, disk="d0"):
    """Consult the injector n times at fixed (time, lba) points."""
    hits = []
    for i in range(n):
        fired = injector.disk_fault(disk, lba=i * 8, nblocks=8)
        hits.append(None if fired is None else fired[0])
    return hits


def test_same_seed_same_schedule():
    plan = FaultPlan(seed=42, specs=(
        FaultSpec(kind="disk.media_error", probability=0.2),
        FaultSpec(kind="disk.slow", probability=0.3),
    ))
    a = _drain_draws(FaultInjector(Engine(), plan))
    b = _drain_draws(FaultInjector(Engine(), plan))
    assert a == b
    assert any(h is not None for h in a)


def test_different_seeds_differ():
    mk = lambda seed: FaultPlan(seed=seed, specs=(
        FaultSpec(kind="disk.media_error", probability=0.3),
    ))
    a = _drain_draws(FaultInjector(Engine(), mk(1)))
    b = _drain_draws(FaultInjector(Engine(), mk(2)))
    assert a != b


def test_adding_a_spec_never_perturbs_earlier_streams():
    base = FaultPlan(seed=7, specs=(
        FaultSpec(kind="disk.media_error", probability=0.2),
    ))
    extended = FaultPlan(seed=7, specs=(
        FaultSpec(kind="disk.media_error", probability=0.2),
        FaultSpec(kind="disk.stall", probability=0.0),
    ))
    a = _drain_draws(FaultInjector(Engine(), base))
    b = _drain_draws(FaultInjector(Engine(), extended))
    # The stall spec never fires (p=0) and the media-error stream is
    # keyed by spec index, so the observable schedule is identical.
    assert a == b


def test_first_match_wins_in_plan_order():
    plan = FaultPlan(specs=(
        FaultSpec(kind="disk.slow", probability=1.0),
        FaultSpec(kind="disk.media_error", probability=1.0),
    ))
    injector = FaultInjector(Engine(), plan)
    kind, _spec = injector.disk_fault("d0", 0, 8)
    assert kind == "disk.slow"


def test_max_hits_budget_is_enforced():
    plan = FaultPlan(specs=(
        FaultSpec(kind="disk.media_error", probability=1.0, max_hits=3),
    ))
    injector = FaultInjector(Engine(), plan)
    hits = _drain_draws(injector, n=10)
    assert hits.count("disk.media_error") == 3
    assert hits[:3] == ["disk.media_error"] * 3
    assert injector.injected.value == 3


def test_target_and_lba_filters():
    plan = FaultPlan(specs=(
        FaultSpec(kind="disk.media_error", target="d1", probability=1.0,
                  lba_range=(100, 200)),
    ))
    injector = FaultInjector(Engine(), plan)
    assert injector.disk_fault("d0", 150, 8) is None
    assert injector.disk_fault("d1", 0, 8) is None
    assert injector.disk_fault("d1", 150, 8) is not None


def test_net_fault_scoping():
    plan = FaultPlan(specs=(
        FaultSpec(kind="net.drop", target="server", probability=1.0,
                  max_hits=1),
    ))
    injector = FaultInjector(Engine(), plan)
    assert not injector.net_fault("client", "send")
    assert injector.net_fault("server", "send")
    assert not injector.net_fault("server", "send")  # budget spent
    record = injector.injections[0]
    assert record.kind == "net.drop"
    assert record.detail == {"scope": "server", "op": "send"}


def test_schedule_dump_is_json_serializable_and_ordered():
    plan = FaultPlan(seed=5, specs=(
        FaultSpec(kind="disk.media_error", probability=0.5),
    ))
    injector = FaultInjector(Engine(), plan)
    _drain_draws(injector, n=30)
    dump = injector.schedule_dump()
    assert dump, "expected at least one firing at p=0.5 over 30 draws"
    round_trip = json.loads(json.dumps(dump))
    assert round_trip == dump
    for record in dump:
        assert set(record) == {"time", "kind", "target", "spec", "detail"}

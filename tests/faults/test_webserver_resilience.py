"""Webserver graceful degradation: resets, shedding, deadlines,
bounded accept queues, and the errors gauge."""

import pytest

from repro.errors import ConnectionReset, ReproError
from repro.faults import FaultPlan, FaultSpec, Retrier, RetryPolicy
from repro.webserver import HostConfig, WebServerHost, WebServerConfig


def test_config_validates_degradation_knobs():
    with pytest.raises(ReproError):
        WebServerConfig(max_concurrency=0)
    with pytest.raises(ReproError):
        WebServerConfig(accept_backlog=0)
    with pytest.raises(ReproError):
        WebServerConfig(request_deadline=0.0)
    cfg = WebServerConfig(max_concurrency=4, accept_backlog=8,
                          request_deadline=1.0)
    assert cfg.max_concurrency == 4


def test_degradation_knobs_off_by_default_serve_normally():
    host = WebServerHost(HostConfig(server=WebServerConfig(
        max_concurrency=8, accept_backlog=4, request_deadline=5.0)))
    results = host.run_request_sequence([
        ("GET", "/images/photo1.jpg"),
        ("POST", "/upload", 20000),
    ])
    assert [r.status for r in results] == [200, 201]
    assert host.metrics.errors == 0
    assert host.server.shed.value == 0


def test_connection_resets_recovered_by_client_retry():
    plan = FaultPlan(seed=77, specs=(
        FaultSpec(kind="net.drop", target="server", probability=0.25),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    client = host.client(retrier=Retrier(
        host.engine, RetryPolicy(max_attempts=6), category="client"))

    def driver():
        results = []
        for _ in range(12):
            results.append((yield from client.get("/images/photo2.jpg")))
        return results

    results = host.engine.run_process(driver())
    assert all(r.status == 200 for r in results)
    assert host.injector.injected.value > 0
    assert client.retrier.retries.value > 0
    # Server-side: every torn request is accounted in the errors gauge.
    assert host.metrics.failures == host.injector.injected.value
    assert host.metrics.errors >= host.metrics.failures


def test_reset_without_retry_surfaces_connection_reset():
    plan = FaultPlan(seed=3, specs=(
        FaultSpec(kind="net.drop", target="client", probability=1.0,
                  max_hits=1),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    client = host.client()

    def driver():
        yield from client.get("/images/photo1.jpg")

    with pytest.raises(ConnectionReset):
        host.engine.run_process(driver())


def test_load_shedding_answers_503_from_accept_thread():
    host = WebServerHost(HostConfig(server=WebServerConfig(max_concurrency=1)))
    statuses = []

    def one_get(c):
        r = yield from c.get("/images/photo1.jpg")
        statuses.append(r.status)

    def fanout():
        procs = [host.engine.process(one_get(host.client()))
                 for _ in range(6)]
        for p in procs:
            yield p

    host.engine.run_process(fanout())
    assert host.server.shed.value > 0
    assert 200 in statuses and 503 in statuses
    assert host.metrics.failure_reasons.get("shed") == host.server.shed.value
    # Sheds land in the errors gauge, not only in the shed counter.
    assert host.metrics.errors >= host.server.shed.value


def test_request_deadline_downgrades_to_503():
    host = WebServerHost(HostConfig(server=WebServerConfig(
        request_deadline=1e-6)))
    results = host.run_request_sequence([("GET", "/images/photo3.jpg")])
    assert results[0].status == 503
    assert host.server.deadline_exceeded.value == 1
    assert host.metrics.errors == 1  # 503 counts as an error response


def test_accept_backlog_refuses_with_reset_and_counts():
    host = WebServerHost(HostConfig(server=WebServerConfig(
        max_concurrency=1, accept_backlog=1)))
    outcomes = []

    def one_get(c):
        try:
            r = yield from c.get("/images/photo1.jpg")
            outcomes.append(r.status)
        except ConnectionReset:
            outcomes.append("refused")

    def fanout():
        procs = [host.engine.process(one_get(host.client()))
                 for _ in range(8)]
        for p in procs:
            yield p

    host.engine.run_process(fanout())
    assert "refused" in outcomes
    assert host.server.listener.refused > 0
    assert 200 in outcomes


def test_malformed_request_recorded_not_dropped():
    from repro.webserver.httpmsg import HttpRequest

    host = WebServerHost(HostConfig())
    client = host.client()

    def driver():
        # A PUT is unsupported: the server's protected region catches
        # the protocol violation and answers 405 instead of dying.
        req = HttpRequest.__new__(HttpRequest)
        object.__setattr__(req, "method", "PUT")
        object.__setattr__(req, "path", "/x")
        object.__setattr__(req, "body_bytes", 0)
        result = yield from client.request(req)
        return result

    result = host.engine.run_process(driver())
    assert result.status in (400, 405)
    assert host.metrics.errors == 1

"""FaultSpec / FaultPlan validation and matching semantics."""

import pytest

from repro.errors import FaultError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


def test_valid_kinds_construct():
    for kind in FAULT_KINDS:
        spec = FaultSpec(kind=kind)
        assert spec.kind == kind
        assert spec.target == "*"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "disk.meltdown"},
        {"kind": "disk.slow", "start": -1.0},
        {"kind": "disk.slow", "start": 2.0, "end": 2.0},
        {"kind": "disk.slow", "probability": 1.5},
        {"kind": "disk.slow", "probability": -0.1},
        {"kind": "disk.media_error", "lba_range": (10, 10)},
        {"kind": "disk.media_error", "lba_range": (-1, 5)},
        {"kind": "disk.slow", "slow_factor": 0.5},
        {"kind": "disk.stall", "delay": -0.1},
        {"kind": "net.drop", "max_hits": 0},
    ],
)
def test_invalid_specs_raise(kwargs):
    with pytest.raises(FaultError):
        FaultSpec(**kwargs)


def test_probabilistic_excludes_window_scheduled_kinds():
    scheduled = ("disk.fail", "node.crash", "node.partition")
    for kind in scheduled:
        assert not FaultSpec(kind=kind).probabilistic
    for kind in FAULT_KINDS:
        if kind not in scheduled:
            assert FaultSpec(kind=kind).probabilistic


def test_window_and_target_matching():
    spec = FaultSpec(kind="disk.slow", target="d0", start=1.0, end=3.0)
    assert not spec.active_at(0.5)
    assert spec.active_at(1.0)
    assert spec.active_at(2.999)
    assert not spec.active_at(3.0)
    assert spec.matches_target("d0")
    assert not spec.matches_target("d1")
    assert FaultSpec(kind="disk.slow").matches_target("anything")


def test_lba_range_is_half_open_overlap():
    spec = FaultSpec(kind="disk.media_error", lba_range=(100, 200))
    assert spec.matches_lba(150, 8)
    assert spec.matches_lba(96, 8)      # tail overlaps
    assert spec.matches_lba(199, 8)     # head overlaps
    assert not spec.matches_lba(92, 8)  # ends exactly at lo
    assert not spec.matches_lba(200, 8)
    assert FaultSpec(kind="disk.media_error").matches_lba(0, 1)


def test_stream_names_distinguish_identical_specs():
    spec = FaultSpec(kind="net.drop", target="server")
    assert spec.stream_name(0) != spec.stream_name(1)


def test_plan_coerces_iterables_and_validates_members():
    plan = FaultPlan(seed=3, specs=[FaultSpec(kind="disk.slow")])
    assert isinstance(plan.specs, tuple)
    with pytest.raises(FaultError):
        FaultPlan(specs=["not a spec"])


def test_for_kind_preserves_plan_order():
    plan = FaultPlan(specs=(
        FaultSpec(kind="disk.slow"),
        FaultSpec(kind="net.drop"),
        FaultSpec(kind="disk.slow", target="d1"),
    ))
    pairs = plan.for_kind("disk.slow")
    assert [i for i, _ in pairs] == [0, 2]
    assert plan.for_kind("net.drop")[0][0] == 1


def test_describe_mentions_every_rule():
    plan = FaultPlan(seed=9, specs=(
        FaultSpec(kind="disk.slow", slow_factor=3.0, max_hits=2),
        FaultSpec(kind="disk.stall", delay=0.5),
        FaultSpec(kind="disk.fail", target="d0", end=4.0),
    ))
    text = plan.describe()
    assert "seed=9" in text
    assert "disk.slow" in text and "x3" in text and "max_hits=2" in text
    assert "disk.stall" in text and "+0.5s" in text
    assert "disk.fail" in text and "target=d0" in text
    assert "no faults" in FaultPlan().describe()

"""Tests for the instrumentation probe and its component wiring."""

import pytest

from repro.errors import SimulationError
from repro.io import FileSystem
from repro.sim import Engine, NULL_PROBE, NullProbe, Probe
from repro.storage import Disk, DiskGeometry


def test_null_probe_discards():
    NULL_PROBE.record("x", "y", a=1)  # must not raise or store anything
    assert not NULL_PROBE.enabled
    assert not NULL_PROBE.wants("anything")


def test_probe_records_with_timestamps():
    eng = Engine()
    probe = Probe(eng)

    def proc():
        probe.record("test", "start")
        yield eng.timeout(2.5)
        probe.record("test", "end", value=42)

    eng.process(proc())
    eng.run()
    assert len(probe) == 2
    assert probe.entries[0].time == 0.0
    assert probe.entries[1].time == 2.5
    assert probe.entries[1].fields == {"value": 42}


def test_probe_category_filter():
    eng = Engine()
    probe = Probe(eng, categories={"keep"})
    probe.record("keep", "a")
    probe.record("drop", "b")
    assert [e.message for e in probe.entries] == ["a"]
    assert probe.wants("keep") and not probe.wants("drop")


def test_probe_capacity_drops_oldest():
    eng = Engine()
    probe = Probe(eng, capacity=3)
    for i in range(5):
        probe.record("c", f"m{i}")
    assert [e.message for e in probe.entries] == ["m2", "m3", "m4"]
    assert probe.dropped == 2
    with pytest.raises(SimulationError):
        Probe(eng, capacity=0)


def test_probe_queries_and_render():
    eng = Engine()
    probe = Probe(eng)
    probe.record("a", "first", x=1)

    def proc():
        yield eng.timeout(1.0)
        probe.record("b", "second")

    eng.process(proc())
    eng.run()
    assert len(probe.by_category("a")) == 1
    assert len(probe.between(0.5, 2.0)) == 1
    text = probe.render()
    assert "first" in text and "x=1" in text
    probe.clear()
    assert len(probe) == 0


def test_disk_emits_probe_events():
    eng = Engine()
    probe = Probe(eng)
    disk = Disk(
        eng,
        geometry=DiskGeometry(cylinders=100, heads=2, sectors_per_track=10),
        probe=probe,
    )
    disk.submit_range(0, 4)
    eng.run()
    messages = [e.message for e in probe.by_category("disk")]
    assert any("submit" in m for m in messages)
    assert any("complete" in m for m in messages)


def test_fs_and_cache_emit_probe_events():
    eng = Engine()
    probe = Probe(eng)
    disk = Disk(
        eng,
        geometry=DiskGeometry(cylinders=1000, heads=2, sectors_per_track=40),
        probe=probe,
    )
    fs = FileSystem(eng, disk, probe=probe)

    def scenario():
        yield from fs.create("/f", size_bytes=100_000)
        h = yield from fs.open("/f")
        yield from fs.read(h, 8192)
        yield from fs.close(h)

    eng.run_process(scenario())
    fs_ops = {e.message for e in probe.by_category("fs")}
    assert {"open", "read", "close"} <= fs_ops
    cache_msgs = [e.message for e in probe.by_category("cache")]
    assert "prefetch" in cache_msgs  # the open-prefetch
    # Events are time-ordered.
    times = [e.time for e in probe.entries]
    assert times == sorted(times)


def test_probe_off_by_default_costs_nothing():
    """Components default to the shared NullProbe instance."""
    eng = Engine()
    disk = Disk(eng, geometry=DiskGeometry(cylinders=100, heads=2, sectors_per_track=10))
    assert isinstance(disk.probe, NullProbe)
    fs = FileSystem(eng, disk)
    assert isinstance(fs.probe, NullProbe)
    assert isinstance(fs.cache.probe, NullProbe)


def test_probe_construction_warns_deprecation():
    eng = Engine()
    with pytest.warns(DeprecationWarning, match="Probe is deprecated"):
        probe = Probe(eng)
    # The adapter still behaves exactly as before the deprecation.
    probe.record("disk", "op", lba=7)
    assert len(probe) == 1
    entry = probe.entries[0]
    assert (entry.category, entry.message, entry.fields) == ("disk", "op", {"lba": 7})
    assert probe.render() != ""

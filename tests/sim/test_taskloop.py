"""TaskLoop: many coroutine tasks multiplexed on one process."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, TaskLoop


def test_tasks_run_and_return_results():
    eng = Engine()
    loop = TaskLoop(eng)
    loop.start()
    done = []

    def job(n):
        yield eng.timeout(0.1 * n)
        return n * n

    tasks = [loop.spawn(job(n), label=f"job-{n}") for n in (3, 1, 2)]
    for t in tasks:
        t.add_done_callback(lambda t: done.append(t.result))
    eng.run()
    assert sorted(done) == [1, 4, 9]
    assert all(t.done and t.ok for t in tasks)
    assert tasks[1].result == 1
    assert loop.live == 0
    assert loop.tasks_spawned == 3
    assert loop.peak_live == 3


def test_loop_uses_exactly_one_process():
    eng = Engine()
    loop = TaskLoop(eng)
    proc = loop.start()

    def job():
        yield eng.timeout(1.0)

    for _ in range(100):
        loop.spawn(job())
    eng.run()
    assert loop.peak_live == 100
    # One driver process carried all 100 tasks.
    assert proc.is_alive  # daemon: parked, never exits


def test_completion_event_bridges_to_processes():
    eng = Engine()
    loop = TaskLoop(eng)
    loop.start()

    def job():
        yield eng.timeout(2.0)
        return "answer"

    def waiter():
        task = loop.spawn(job())
        value = yield loop.completion_event(task)
        return (eng.now, value)

    assert eng.run_process(waiter()) == (2.0, "answer")


def test_same_timestamp_tasks_finish_in_spawn_order():
    eng = Engine()
    loop = TaskLoop(eng)
    loop.start()
    order = []

    def job(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        loop.spawn(job(tag))
    eng.run()
    assert order == ["a", "b", "c"]


def test_task_error_routed_to_error_handler():
    eng = Engine()
    failed = []
    loop = TaskLoop(eng, error_handler=lambda t: failed.append(t.label))
    loop.start()

    def bad():
        yield eng.timeout(0.5)
        raise ValueError("boom")

    def good():
        yield eng.timeout(1.0)
        return "fine"

    loop.spawn(bad(), label="bad")
    ok = loop.spawn(good(), label="good")
    eng.run()
    assert failed == ["bad"]
    assert loop.tasks_failed == 1
    # The loop survives a task failure; other tasks complete.
    assert ok.done and ok.result == "fine"


def test_task_error_without_handler_or_callbacks_raises():
    eng = Engine()
    loop = TaskLoop(eng)
    loop.start()

    def bad():
        yield eng.timeout(0.5)
        raise ValueError("boom")

    loop.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_completion_event_carries_task_failure():
    eng = Engine()
    loop = TaskLoop(eng, error_handler=lambda t: None)
    loop.start()

    def bad():
        yield eng.timeout(0.5)
        raise ValueError("boom")

    def waiter():
        task = loop.spawn(bad())
        try:
            yield loop.completion_event(task)
        except ValueError as exc:
            return str(exc)
        return "no error"

    assert eng.run_process(waiter()) == "boom"


def test_non_event_yield_fails_the_task_not_the_loop():
    eng = Engine()
    failed = []
    loop = TaskLoop(eng, error_handler=lambda t: failed.append(t.error))
    loop.start()

    def wrong():
        yield 42

    loop.spawn(wrong())
    eng.run()
    assert len(failed) == 1
    assert isinstance(failed[0], SimulationError)


def test_double_start_rejected():
    eng = Engine()
    loop = TaskLoop(eng)
    loop.start()
    with pytest.raises(SimulationError):
        loop.start()


def test_tasks_can_spawn_tasks():
    eng = Engine()
    loop = TaskLoop(eng)
    loop.start()
    seen = []

    def child(n):
        yield eng.timeout(0.1)
        seen.append(n)

    def parent():
        yield eng.timeout(0.1)
        for n in range(3):
            loop.spawn(child(n))

    loop.spawn(parent())
    eng.run()
    assert seen == [0, 1, 2]
    assert loop.tasks_spawned == 4

"""Tests for Resource / Store / Channel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, Engine, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity_immediately():
    eng = Engine()
    res = Resource(eng, capacity=2)
    granted = []

    def proc(tag):
        req = res.acquire()
        yield req
        granted.append((tag, eng.now))
        yield eng.timeout(10.0)
        res.release(req)

    for tag in ("a", "b", "c"):
        eng.process(proc(tag))
    eng.run()
    # a and b at t=0, c waits until one of them releases at t=10
    assert granted == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def proc(tag, hold):
        req = res.acquire()
        yield req
        order.append(tag)
        yield eng.timeout(hold)
        res.release(req)

    for tag in ("first", "second", "third"):
        eng.process(proc(tag, 1.0))
    eng.run()
    assert order == ["first", "second", "third"]


def test_resource_counts():
    eng = Engine()
    res = Resource(eng, capacity=3)
    reqs = [res.acquire() for _ in range(5)]
    eng.run()
    assert res.in_use == 3
    assert res.available == 0
    assert res.queued == 2
    res.release(reqs[0])
    assert res.in_use == 3  # slot transferred to a waiter
    assert res.queued == 1


def test_resource_release_foreign_request_rejected():
    eng = Engine()
    res1 = Resource(eng, capacity=1)
    res2 = Resource(eng, capacity=1)
    req = res1.acquire()
    with pytest.raises(SimulationError):
        res2.release(req)


def test_resource_release_queued_request_cancels():
    eng = Engine()
    res = Resource(eng, capacity=1)
    first = res.acquire()
    second = res.acquire()  # queued
    assert res.queued == 1
    res.release(second)  # cancel while queued
    assert res.queued == 0
    assert res.in_use == 1
    res.release(first)
    assert res.in_use == 0


def test_resource_capacity_validation():
    eng = Engine()
    with pytest.raises(SimulationError):
        Resource(eng, capacity=0)


def test_resource_utilization_tracked():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def proc():
        req = res.acquire()
        yield req
        yield eng.timeout(5.0)
        res.release(req)
        yield eng.timeout(5.0)

    eng.process(proc())
    eng.run()
    assert res.utilization.mean() == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    eng = Engine()
    store = Store(eng)
    store.put("x")
    got = []

    def proc():
        item = yield store.get()
        got.append(item)

    eng.process(proc())
    eng.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get()
        got.append((eng.now, item))

    def producer():
        yield eng.timeout(4.0)
        store.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [(4.0, "late")]


def test_store_fifo_items_and_getters():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    eng.process(consumer("c1"))
    eng.process(consumer("c2"))

    def producer():
        yield eng.timeout(1.0)
        store.put("i1")
        store.put("i2")

    eng.process(producer())
    eng.run()
    assert got == [("c1", "i1"), ("c2", "i2")]


def test_store_count():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    store.put(2)
    assert store.count == 2


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

def test_channel_transfer_time():
    eng = Engine()
    ch = Channel(eng, bandwidth=100.0, latency=0.5)
    assert ch.transfer_time(200) == pytest.approx(0.5 + 2.0)


def test_channel_send_takes_latency_plus_transmission():
    eng = Engine()
    ch = Channel(eng, bandwidth=1000.0, latency=0.1)

    def proc():
        yield from ch.send(500)
        return eng.now

    p = eng.process(proc())
    eng.run()
    assert p.value == pytest.approx(0.1 + 0.5)
    assert ch.bytes_sent == 500
    assert ch.transfers == 1


def test_channel_serializes_transmission_but_pipelines_latency():
    eng = Engine()
    ch = Channel(eng, bandwidth=100.0, latency=1.0)
    finish = {}

    def sender(tag):
        yield from ch.send(100)  # 1s transmission + 1s latency
        finish[tag] = eng.now

    eng.process(sender("a"))
    eng.process(sender("b"))
    eng.run()
    # a: transmit 0-1, arrive 2.  b: transmit 1-2, arrive 3.
    assert finish["a"] == pytest.approx(2.0)
    assert finish["b"] == pytest.approx(3.0)


def test_channel_validation():
    eng = Engine()
    with pytest.raises(SimulationError):
        Channel(eng, bandwidth=0.0)
    with pytest.raises(SimulationError):
        Channel(eng, bandwidth=1.0, latency=-1.0)
    ch = Channel(eng, bandwidth=1.0)
    with pytest.raises(SimulationError):
        ch.transfer_time(-5)

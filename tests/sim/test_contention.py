"""Contention semantics under the race detector.

These tests re-exercise the sync primitives' contracts — FIFO grant
fairness, cancel-while-queued, hand-off vs buffered Store paths,
zero-byte Channel transfers — with :func:`repro.sanitizer.sanitized`
active, pinning two things at once: the primitives behave identically
under instrumentation, and their internal hand-offs carry the
happens-before edges that keep correctly synchronized code race-free.
"""

from repro.sanitizer import sanitized, shared
from repro.sim import Channel, Engine, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_fifo_fairness_under_sanitizer():
    with sanitized() as det:
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def proc(tag):
            req = res.acquire()
            yield req
            order.append((tag, eng.now))
            yield eng.timeout(1.0)
            res.release(req)

        for tag in range(5):
            eng.process(proc(tag))
        eng.run()
    assert order == [(t, float(t)) for t in range(5)]
    assert det.races == []


def test_resource_handoff_is_a_synchronization_edge():
    # Writer releases the slot to a queued reader: the reader's access
    # to the shared var is ordered by the grant hand-off, not a race.
    with sanitized() as det:
        eng = Engine()
        res = Resource(eng, capacity=1)
        var = shared("guarded")
        state = {"x": 0}

        def writer():
            req = res.acquire()
            yield req
            var.write(eng, op="store")
            state["x"] = 1
            res.release(req)

        def reader():
            req = res.acquire()
            yield req
            var.read(eng, op="load")
            assert state["x"] == 1
            res.release(req)

        eng.process(writer())
        eng.process(reader())
        eng.run()
    assert det.races == []
    assert det.accesses == 2


def test_cancel_while_queued_releases_slot_to_next_waiter():
    with sanitized() as det:
        eng = Engine()
        res = Resource(eng, capacity=1)
        granted = []

        def holder():
            req = res.acquire()
            yield req
            granted.append("holder")
            yield eng.timeout(5.0)
            res.release(req)

        def quitter():
            req = res.acquire()
            yield eng.timeout(1.0)  # give up before the grant arrives
            assert not req.triggered
            res.release(req)  # cancel: removed from the wait queue
            granted.append("quitter-cancelled")

        def patient():
            req = res.acquire()
            yield req
            granted.append("patient")
            res.release(req)

        eng.process(holder())
        eng.process(quitter())
        eng.process(patient())
        eng.run()
        # The cancelled waiter never got the slot; the patient waiter
        # inherited it when the holder released.
        assert granted == ["holder", "quitter-cancelled", "patient"]
        assert res.in_use == 0 and res.queued == 0
    assert det.races == []


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_parked_getters_wake_fifo_under_sanitizer():
    with sanitized() as det:
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        def producer():
            yield eng.timeout(1.0)
            store.put("a")
            store.put("b")

        eng.process(consumer(1))
        eng.process(consumer(2))
        eng.process(producer())
        eng.run()
    assert got == [(1, "a"), (2, "b")]
    assert det.races == []


def test_store_buffered_put_orders_the_later_getter():
    # Buffered path: the putter's clock is stashed with the item, so
    # the getter inherits the edge and its read is not a race.
    with sanitized() as det:
        eng = Engine()
        store = Store(eng)
        var = shared("payload")
        state = {}

        def producer():
            yield eng.timeout(1.0)
            var.write(eng, op="fill")
            state["v"] = 42
            store.put("ready")

        def consumer():
            yield store.get()
            var.read(eng, op="use")
            assert state["v"] == 42

        eng.process(producer())
        eng.process(consumer())
        eng.run()
    assert det.races == []


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

def test_zero_byte_transfer_pays_latency_only():
    with sanitized() as det:
        eng = Engine()
        ch = Channel(eng, bandwidth=1000.0, latency=0.25)
        done = []

        def sender():
            yield from ch.send(0)
            done.append(eng.now)

        eng.process(sender())
        eng.run()
        assert done == [0.25]
        assert ch.bytes_sent == 0 and ch.transfers == 1
    assert det.races == []


def test_channel_serializes_contending_senders_fifo():
    with sanitized() as det:
        eng = Engine()
        ch = Channel(eng, bandwidth=100.0)  # 1 byte = 10 ms
        finished = []

        def sender(tag, nbytes):
            yield from ch.send(nbytes)
            finished.append((tag, round(eng.now, 6)))

        for tag in range(3):
            eng.process(sender(tag, 1))
        eng.process(sender("zero", 0))
        eng.run()
        # FIFO over the shared link: three 10 ms transfers back to
        # back, then the zero-byte send completes instantly.
        assert finished == [(0, 0.01), (1, 0.02), (2, 0.03),
                            ("zero", 0.03)]
        assert ch.bytes_sent == 3 and ch.transfers == 4
    assert det.races == []

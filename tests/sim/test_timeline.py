"""Tests for the ASCII timeline renderer."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Probe
from repro.sim.timeline import bucket_counts, render_timeline


def make_probe():
    eng = Engine()
    probe = Probe(eng)

    def proc():
        for i in range(10):
            probe.record("disk", "op")
            if i % 2 == 0:
                probe.record("cache", "op")
            yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    return probe


def test_bucket_counts_shape():
    probe = make_probe()
    counts, lo, hi = bucket_counts(probe.entries, buckets=10)
    assert set(counts) == {"disk", "cache"}
    assert len(counts["disk"]) == 10
    assert sum(counts["disk"]) == 10
    assert sum(counts["cache"]) == 5
    assert lo == 0.0 and hi == 9.0


def test_bucket_counts_explicit_window():
    probe = make_probe()
    counts, lo, hi = bucket_counts(probe.entries, buckets=5, start=0.0, end=4.0)
    assert sum(counts["disk"]) == 5  # events at t=0..4 inclusive


def test_bucket_counts_validation():
    probe = make_probe()
    with pytest.raises(SimulationError):
        bucket_counts(probe.entries, buckets=0)
    with pytest.raises(SimulationError):
        bucket_counts([], buckets=5)


def test_render_timeline():
    probe = make_probe()
    text = render_timeline(probe, buckets=10)
    lines = text.splitlines()
    assert "timeline:" in lines[0]
    assert len(lines) == 3  # header + 2 categories
    # Rows aligned: both pipe-delimited cells are equally wide.
    cells = [line.split("|")[1] for line in lines[1:]]
    assert len(cells[0]) == len(cells[1]) == 10
    # The disk row (denser) uses heavier glyphs than blank.
    assert any(ch != " " for ch in cells[0])


def test_render_single_instant():
    eng = Engine()
    probe = Probe(eng)
    probe.record("x", "only")
    text = render_timeline(probe, buckets=4)
    assert "x" in text

"""Tests for the event engine: clock, ordering, run semantics."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_custom_start():
    assert Engine(start=10.0).now == 10.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc():
        yield eng.timeout(2.5)

    eng.process(proc())
    assert eng.run() == 2.5
    assert eng.now == 2.5


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_run_until_stops_early():
    eng = Engine()
    hits = []

    def proc():
        for _ in range(10):
            yield eng.timeout(1.0)
            hits.append(eng.now)

    eng.process(proc())
    eng.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert eng.now == 3.5


def test_run_until_beyond_completion_advances_clock():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run(until=100.0)
    assert eng.now == 100.0


def test_same_time_events_fire_fifo():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        eng.process(proc(tag))
    eng.run()
    assert order == ["a", "b", "c"]


def test_sequential_timeouts_accumulate():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        yield eng.timeout(2.0)
        yield eng.timeout(3.0)

    eng.process(proc())
    assert eng.run() == 6.0


def test_process_return_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        return 42

    assert eng.run_process(proc()) == 42


def test_process_exception_propagates_via_run_process():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        eng.run_process(proc())


def test_yielding_non_event_fails_process():
    eng = Engine()

    def proc():
        yield 123  # type: ignore[misc]

    p = eng.process(proc())
    eng.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, SimulationError)


def test_cross_engine_event_rejected():
    eng1, eng2 = Engine(), Engine()

    def proc():
        yield eng2.timeout(1.0)

    p = eng1.process(proc())
    eng1.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_deadlock_detected():
    eng = Engine()

    def proc():
        yield eng.event()  # nobody will ever trigger this

    eng.process(proc())
    with pytest.raises(DeadlockError):
        eng.run()


def test_event_succeed_wakes_waiter():
    eng = Engine()
    gate = eng.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((eng.now, value))

    def opener():
        yield eng.timeout(5.0)
        gate.succeed("open")

    eng.process(waiter())
    eng.process(opener())
    eng.run()
    assert seen == [(5.0, "open")]


def test_event_fail_raises_inside_waiter():
    eng = Engine()
    gate = eng.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield eng.timeout(1.0)
        gate.fail(RuntimeError("nope"))

    eng.process(waiter())
    eng.process(failer())
    eng.run()
    assert caught == ["nope"]


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_fail_requires_exception_instance():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.event().fail("not an exception")  # type: ignore[arg-type]


def test_waiting_on_already_processed_event():
    eng = Engine()
    gate = eng.event()
    gate.succeed("early")
    got = []

    def late_waiter():
        yield eng.timeout(3.0)
        value = yield gate
        got.append((eng.now, value))

    eng.process(late_waiter())
    eng.run()
    assert got == [(3.0, "early")]


def test_step_on_empty_queue_raises_simulation_error():
    eng = Engine()
    with pytest.raises(SimulationError, match="empty event queue"):
        eng.step()


def test_step_on_empty_queue_after_drain():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    with pytest.raises(SimulationError, match="empty event queue"):
        eng.step()


def test_run_not_reentrant():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        eng.run()

    p = eng.process(proc())
    eng.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_many_processes_complete():
    eng = Engine()
    done = []

    def proc(i):
        yield eng.timeout(float(i % 7) + 0.1)
        done.append(i)

    for i in range(200):
        eng.process(proc(i))
    eng.run()
    assert sorted(done) == list(range(200))


def test_process_needs_generator():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_process_is_alive_transitions():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    p = eng.process(proc())
    assert p.is_alive
    eng.run()
    assert not p.is_alive
    assert p.ok


def test_waiting_on_another_process():
    eng = Engine()
    log = []

    def child():
        yield eng.timeout(2.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        log.append((eng.now, result))

    eng.process(parent())
    eng.run()
    assert log == [(2.0, "child-result")]


def test_timeout_carries_value():
    eng = Engine()
    got = []

    def proc():
        v = yield eng.timeout(1.0, value="payload")
        got.append(v)

    eng.process(proc())
    eng.run()
    assert got == ["payload"]


# -- background scheduling (telemetry sampler contract) ----------------------


def test_background_call_runs_before_foreground_work_ends():
    eng = Engine()
    ticks = []

    def tick():
        ticks.append(eng.now)
        eng.schedule_background(tick, 1.0)

    def proc():
        yield eng.timeout(3.5)

    eng.schedule_background(tick, 1.0)
    eng.process(proc())
    assert eng.run() == 3.5
    # Ticks at 1, 2, 3 ran (before the workload's final event); the
    # tick at 4 was discarded without advancing the clock.
    assert ticks == [1.0, 2.0, 3.0]
    assert eng.now == 3.5


def test_background_never_extends_a_run():
    plain = Engine()
    plain.process((plain.timeout(0.7) for _ in range(1)))

    def _wait(e):
        yield e.timeout(0.7)

    a, b = Engine(), Engine()
    a.process(_wait(a))
    b.process(_wait(b))
    b.schedule_background(lambda: None, 0.25)
    assert a.run() == b.run() == 0.7


def test_background_only_queue_drains_without_running():
    eng = Engine()
    ran = []
    eng.schedule_background(lambda: ran.append(1), 5.0)
    assert eng.run() == 0.0
    assert ran == []
    assert eng.now == 0.0


def test_two_background_chains_do_not_keep_each_other_alive():
    eng = Engine()
    counts = {"a": 0, "b": 0}

    def make(key):
        def tick():
            counts[key] += 1
            eng.schedule_background(tick, 1.0)
        return tick

    eng.schedule_background(make("a"), 1.0)
    eng.schedule_background(make("b"), 1.0)

    def proc():
        yield eng.timeout(2.5)

    eng.process(proc())
    assert eng.run() == 2.5
    assert counts == {"a": 2, "b": 2}


def test_background_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule_background(lambda: None, -0.1)


def test_background_respects_until_bound():
    eng = Engine()
    ticks = []

    def tick():
        ticks.append(eng.now)
        eng.schedule_background(tick, 1.0)

    def proc():
        for _ in range(6):
            yield eng.timeout(1.0)

    eng.schedule_background(tick, 1.0)
    eng.process(proc())
    eng.run(until=2.25)
    assert eng.now == 2.25
    assert ticks == [1.0, 2.0]
    # Resuming past the bound keeps sampling alongside the workload;
    # the tick at 6.0 still runs (same timestamp as the final event),
    # and only the tick at 7.0 is discarded.
    eng.run()
    assert eng.now == 6.0
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

"""Tests for AllOf / AnyOf condition events."""

import pytest

from repro.sim import Engine


def test_all_of_waits_for_slowest():
    eng = Engine()
    done_at = []

    def proc():
        evs = [eng.timeout(1.0, value="a"), eng.timeout(3.0, value="b")]
        values = yield eng.all_of(evs)
        done_at.append(eng.now)
        assert sorted(values.values()) == ["a", "b"]

    eng.process(proc())
    eng.run()
    assert done_at == [3.0]


def test_any_of_fires_on_fastest():
    eng = Engine()
    done_at = []

    def proc():
        fast = eng.timeout(1.0, value="fast")
        slow = eng.timeout(9.0, value="slow")
        values = yield eng.any_of([fast, slow])
        done_at.append(eng.now)
        assert values == {fast: "fast"}

    eng.process(proc())
    eng.run()
    assert done_at == [1.0]


def test_all_of_empty_succeeds_immediately():
    eng = Engine()
    got = []

    def proc():
        values = yield eng.all_of([])
        got.append((eng.now, values))

    eng.process(proc())
    eng.run()
    assert got == [(0.0, {})]


def test_all_of_propagates_failure():
    eng = Engine()
    caught = []
    gate = eng.event()

    def proc():
        try:
            yield eng.all_of([eng.timeout(5.0), gate])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield eng.timeout(1.0)
        gate.fail(RuntimeError("bad"))

    eng.process(proc())
    eng.process(failer())
    eng.run()
    assert caught == ["bad"]


def test_all_of_with_pretriggered_events():
    eng = Engine()
    ev = eng.event()
    ev.succeed("pre")
    got = []

    def proc():
        values = yield eng.all_of([ev, eng.timeout(2.0, value="late")])
        got.append(sorted(values.values()))

    eng.process(proc())
    eng.run()
    assert got == [["late", "pre"]]


def test_any_of_with_processes():
    eng = Engine()

    def child(t, tag):
        yield eng.timeout(t)
        return tag

    def parent():
        a = eng.process(child(4.0, "slow"))
        b = eng.process(child(1.0, "quick"))
        values = yield eng.any_of([a, b])
        assert list(values.values()) == ["quick"]
        return eng.now

    p = eng.process(parent())
    eng.run()
    assert p.value == 1.0

"""Tests for the statistics collectors."""

import pytest

from repro.errors import SimulationError
from repro.sim import Counter, Engine, Histogram, Tally, TimeWeighted


def test_counter_basic():
    c = Counter("reqs")
    c.add()
    c.add(4)
    assert c.value == 5
    with pytest.raises(SimulationError):
        c.add(-1)


def test_tally_statistics():
    t = Tally()
    t.extend([1.0, 2.0, 3.0, 4.0])
    assert t.count == 4
    assert t.total == 10.0
    assert t.mean == 2.5
    assert t.minimum == 1.0
    assert t.maximum == 4.0
    assert t.percentile(50) == pytest.approx(2.5)
    assert t.std == pytest.approx(1.1180339887, rel=1e-9)


def test_tally_empty_raises():
    t = Tally()
    for attr in ("mean", "minimum", "maximum", "std"):
        with pytest.raises(SimulationError):
            getattr(t, attr)
    with pytest.raises(SimulationError):
        t.percentile(50)


def test_tally_values_is_copy():
    t = Tally()
    t.record(1.0)
    vals = t.values
    vals.append(99.0)
    assert t.count == 1


def test_time_weighted_mean():
    eng = Engine()
    tw = TimeWeighted(eng, initial=0.0)

    def proc():
        yield eng.timeout(2.0)
        tw.record(1.0)
        yield eng.timeout(2.0)
        tw.record(0.0)
        yield eng.timeout(4.0)

    eng.process(proc())
    eng.run()
    # value 0 for 2s, 1 for 2s, 0 for 4s → mean = 2/8
    assert tw.mean() == pytest.approx(0.25)
    assert tw.maximum == 1.0
    assert tw.current == 0.0


def test_time_weighted_zero_span():
    eng = Engine()
    tw = TimeWeighted(eng, initial=3.0)
    assert tw.mean() == 3.0  # no time elapsed → current value


def test_histogram_binning():
    h = Histogram(0.0, 10.0, bins=10)
    for v in [0.5, 1.5, 1.6, 9.99, -1.0, 10.0, 50.0]:
        h.record(v)
    assert h.count == 7
    assert h.underflow == 1
    assert h.overflow == 2
    assert h.counts[0] == 1
    assert h.counts[1] == 2
    assert h.counts[9] == 1
    assert h.mode_bin() == 1


def test_histogram_edges_and_validation():
    h = Histogram(0.0, 1.0, bins=4)
    edges = h.bin_edges()
    assert len(edges) == 5
    assert edges[0] == 0.0 and edges[-1] == 1.0
    with pytest.raises(SimulationError):
        Histogram(0.0, 1.0, bins=0)
    with pytest.raises(SimulationError):
        Histogram(1.0, 1.0, bins=2)
    with pytest.raises(SimulationError):
        Histogram(0.0, 1.0, bins=3).mode_bin()


def test_histogram_percentile_interpolates_within_bins():
    h = Histogram(0.0, 10.0, bins=10)
    for v in range(10):  # one sample per bin
        h.record(v + 0.5)
    # Mass interpolates linearly: p50 sits at the end of the 5th bin.
    assert h.percentile(50) == pytest.approx(5.0)
    assert h.percentile(90) == pytest.approx(9.0)
    assert 9.0 <= h.percentile(99) <= 10.0
    assert h.percentile(10) == pytest.approx(1.0)


def test_histogram_percentile_empty_raises():
    h = Histogram(0.0, 1.0, bins=4)
    with pytest.raises(SimulationError):
        h.percentile(50)


def test_histogram_percentile_out_of_range_q_raises():
    h = Histogram(0.0, 1.0, bins=4)
    h.record(0.5)
    for bad_q in (-1, -0.001, 100.001, 200):
        with pytest.raises(SimulationError):
            h.percentile(bad_q)


def test_histogram_percentile_q0_and_q100_extremes():
    h = Histogram(0.0, 10.0, bins=10)
    h.record(2.5)  # bin 2
    h.record(7.5)  # bin 7
    assert h.percentile(0) == pytest.approx(2.0)   # left edge of first mass
    assert h.percentile(100) == pytest.approx(8.0)  # right edge of last mass


def test_histogram_percentile_single_sample():
    h = Histogram(0.0, 10.0, bins=10)
    h.record(3.7)  # bin 3 spans [3, 4)
    for q in (0, 25, 50, 75, 100):
        assert 3.0 <= h.percentile(q) <= 4.0


def test_histogram_percentile_with_under_and_overflow():
    h = Histogram(0.0, 10.0, bins=10)
    h.record(-5.0)   # underflow counts as mass at low
    h.record(5.5)
    h.record(99.0)   # overflow counts as mass at high
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 10.0
    assert 5.0 <= h.percentile(50) <= 6.0


# -- windowed-telemetry contracts -------------------------------------------

def test_tally_values_since():
    t = Tally()
    t.extend([1.0, 2.0, 3.0])
    assert t.values_since(0) == [1.0, 2.0, 3.0]
    cursor = t.count
    assert t.values_since(cursor) == []
    t.extend([4.0, 5.0])
    assert t.values_since(cursor) == [4.0, 5.0]
    assert t.values_since(t.count) == []


def test_tally_values_since_negative_index_raises():
    t = Tally()
    t.record(1.0)
    with pytest.raises(SimulationError):
        t.values_since(-1)


def test_tally_values_since_returns_copy():
    t = Tally()
    t.extend([1.0, 2.0])
    window = t.values_since(0)
    window.append(99.0)
    assert t.count == 2


def test_histogram_merge_equals_concatenated_samples():
    """Merging two windows' histograms must answer quantile queries
    exactly as one histogram over the concatenated samples would —
    the property that makes per-window p50/p90/p99 composable."""
    first = [0.5, 1.2, 2.7, 3.3, 3.4]
    second = [0.1, 4.8, 4.9, 7.5, 9.1, 9.6]
    a = Histogram(0.0, 10.0, bins=20, name="w0")
    b = Histogram(0.0, 10.0, bins=20, name="w1")
    both = Histogram(0.0, 10.0, bins=20)
    for v in first:
        a.record(v)
        both.record(v)
    for v in second:
        b.record(v)
        both.record(v)
    merged = a.merge(b)
    assert merged.count == both.count == len(first) + len(second)
    assert list(merged.counts) == list(both.counts)
    for q in (50, 90, 99):
        assert merged.percentile(q) == pytest.approx(both.percentile(q))
    assert merged.name == "w0+w1"
    # Merge does not mutate its operands.
    assert a.count == len(first) and b.count == len(second)


def test_histogram_merge_combines_under_and_overflow():
    a = Histogram(0.0, 1.0, bins=4)
    b = Histogram(0.0, 1.0, bins=4)
    a.record(-1.0)
    b.record(2.0)
    b.record(3.0)
    merged = a.merge(b)
    assert merged.underflow == 1
    assert merged.overflow == 2
    assert merged.count == 3


def test_histogram_merge_rejects_mismatched_geometry():
    base = Histogram(0.0, 10.0, bins=10)
    for other in (Histogram(0.0, 10.0, bins=20),
                  Histogram(0.0, 5.0, bins=10),
                  Histogram(1.0, 10.0, bins=10)):
        with pytest.raises(SimulationError):
            base.merge(other)


def test_time_weighted_integral():
    eng = Engine()
    tw = TimeWeighted(eng, initial=2.0)

    def proc():
        yield eng.timeout(3.0)
        tw.record(4.0)
        yield eng.timeout(2.0)

    eng.process(proc())
    eng.run()
    # 2.0 for 3s, then 4.0 for 2s.
    assert tw.integral() == pytest.approx(14.0)
    assert tw.integral(4.0) == pytest.approx(10.0)  # one second into 4.0
    # Window mean from integral differences: [3, 5] averages 4.0.
    assert (tw.integral(5.0) - tw.integral(3.0)) / 2.0 == pytest.approx(4.0)


def test_time_weighted_integral_before_last_change_raises():
    eng = Engine()
    tw = TimeWeighted(eng, initial=0.0)

    def proc():
        yield eng.timeout(2.0)
        tw.record(1.0)

    eng.process(proc())
    eng.run()
    with pytest.raises(SimulationError):
        tw.integral(1.0)

"""The server-architecture layer: thread vs. event loop.

Protocol parity (status codes, shedding, deadlines, resets must be
indistinguishable across architectures), the memory proxy, and the
event loop's headline claim: 10k+ concurrent connections in one
simulated process.
"""

import pytest

from repro.errors import ConnectionReset, ReproError
from repro.sim import TaskLoop
from repro.webserver import (
    EventLoopServer,
    HostConfig,
    SERVER_ARCHITECTURES,
    ThreadPerConnectionServer,
    WebServerConfig,
    WebServerHost,
    WebServer,
)

REQUESTS = [
    ("GET", "/images/photo1.jpg"),
    ("POST", "/upload", 20000),
    ("GET", "/images/photo2.jpg"),
    ("GET", "/missing.jpg"),
    ("GET", "/images/photo3.jpg"),
]


def test_registry_names_both_architectures():
    assert SERVER_ARCHITECTURES == {
        "thread": ThreadPerConnectionServer,
        "eventloop": EventLoopServer,
    }
    # The historical name still points at the paper's design.
    assert WebServer is ThreadPerConnectionServer


def test_unknown_architecture_rejected():
    with pytest.raises(ReproError, match="unknown server architecture"):
        HostConfig(architecture="fibers")


def test_sequential_protocol_parity():
    outcomes = {}
    for arch in SERVER_ARCHITECTURES:
        host = WebServerHost(HostConfig(architecture=arch))
        results = host.run_request_sequence(REQUESTS)
        outcomes[arch] = [(r.status, r.body_bytes) for r in results]
        assert host.server.ARCHITECTURE == arch
        assert host.server.connections_accepted.value == len(REQUESTS)
    assert outcomes["thread"] == outcomes["eventloop"]
    assert [s for s, _ in outcomes["thread"]] == [200, 201, 200, 404, 200]


def test_memory_proxy_separates_architectures():
    def fanout(host, n):
        def one_get(c):
            yield from c.get("/images/photo2.jpg")

        def driver():
            procs = [host.engine.process(one_get(host.client()))
                     for _ in range(n)]
            for p in procs:
                yield p

        host.engine.run_process(driver())

    threaded = WebServerHost(HostConfig())
    fanout(threaded, 8)
    # Acceptor + one worker process per concurrent connection.
    assert threaded.server.peak_live_processes > 2

    evented = WebServerHost(HostConfig(architecture="eventloop"))
    fanout(evented, 8)
    assert evented.server.peak_live_processes == 1
    assert evented.server.live_processes == 1
    assert evented.server.peak_tasks >= 2  # acceptor + connections


def test_shedding_parity_under_concurrency_cap():
    statuses = {}
    for arch in SERVER_ARCHITECTURES:
        host = WebServerHost(HostConfig(
            architecture=arch,
            server=WebServerConfig(max_concurrency=1)))
        seen = []

        def one_get(c):
            r = yield from c.get("/images/photo1.jpg")
            seen.append(r.status)

        def fanout():
            procs = [host.engine.process(one_get(host.client()))
                     for _ in range(6)]
            for p in procs:
                yield p

        host.engine.run_process(fanout())
        assert host.server.shed.value > 0
        assert host.metrics.failure_reasons.get("shed") == host.server.shed.value
        statuses[arch] = sorted(seen)
    # Identical shed decisions and status codes on both designs.
    assert statuses["thread"] == statuses["eventloop"]
    assert 503 in statuses["eventloop"]


def test_deadline_downgrade_parity():
    for arch in SERVER_ARCHITECTURES:
        host = WebServerHost(HostConfig(
            architecture=arch,
            server=WebServerConfig(request_deadline=1e-6)))
        results = host.run_request_sequence([("GET", "/images/photo3.jpg")])
        assert results[0].status == 503
        assert host.server.deadline_exceeded.value == 1


def test_accept_backlog_refusal_parity():
    for arch in SERVER_ARCHITECTURES:
        host = WebServerHost(HostConfig(
            architecture=arch,
            server=WebServerConfig(max_concurrency=1, accept_backlog=1)))
        outcomes = []

        def one_get(c):
            try:
                r = yield from c.get("/images/photo1.jpg")
                outcomes.append(r.status)
            except ConnectionReset:
                outcomes.append("refused")

        def fanout():
            procs = [host.engine.process(one_get(host.client()))
                     for _ in range(8)]
            for p in procs:
                yield p

        host.engine.run_process(fanout())
        assert "refused" in outcomes, arch
        assert 200 in outcomes, arch
        assert host.server.listener.refused > 0


def test_architecture_label_on_metrics():
    host = WebServerHost(HostConfig(architecture="eventloop"))
    host.run_request_sequence([("GET", "/images/photo1.jpg")])
    snap = host.engine.metrics.snapshot()
    assert snap["server.connections"]["labels"]["architecture"] == "eventloop"
    assert snap["webserver.errors"]["labels"]["architecture"] == "eventloop"
    assert snap["server.peak_processes"]["value"] == 1
    # The threaded server's defining counter does not exist here.
    assert not hasattr(host.server, "threads_spawned")


def test_eventloop_server_tags_spans_with_architecture():
    from repro.obs import Tracer

    host = WebServerHost(HostConfig(architecture="eventloop",
                                    tracer=Tracer()))
    host.run_request_sequence([("GET", "/images/photo1.jpg")])
    gets = [s for s in host.engine.tracer.spans("webserver")
            if s.name == "http.get"]
    assert gets and all(s.attrs["arch"] == "eventloop" for s in gets)


def test_eventloop_sustains_10k_connections_in_one_process():
    """The headline scaling claim: >=10k concurrent in-flight
    connections with no per-connection server process."""
    n = 10_000
    host = WebServerHost(HostConfig(architecture="eventloop"))
    engine = host.engine
    server = host.server
    statuses = []

    # The client side multiplexes on a TaskLoop too — 10k client
    # processes would drown the measurement in client-side noise.
    client_loop = TaskLoop(engine, name="client.loop")
    client_loop.start()

    def one_get():
        client = host.client()
        result = yield from client.get("/images/photo2.jpg")
        statuses.append(result.status)

    def driver():
        tasks = [client_loop.spawn(one_get(), label=f"get-{i}")
                 for i in range(n)]
        for t in tasks:
            yield client_loop.completion_event(t)

    engine.run_process(driver())
    assert len(statuses) == n
    assert all(s == 200 for s in statuses)
    assert server.connections_accepted.value == n
    # The whole point: massive concurrency, one server process.
    assert server.peak_live_workers >= 1000
    assert server.peak_live_processes == 1
    assert server.peak_tasks >= server.peak_live_workers

"""Tests for the ``python -m repro.webserver`` load driver."""

import pytest

from repro.webserver.__main__ import main


def test_default_run(capsys):
    assert main(["--clients", "3", "--requests", "4"]) == 0
    out = capsys.readouterr().out
    assert "served          : 12 (0 errors)" in out
    assert "threads spawned : 12" in out
    assert "latency mean" in out


def test_profile_selection(capsys):
    assert main(["--clients", "1", "--requests", "2", "--profile", "interpreter"]) == 0
    out = capsys.readouterr().out
    assert "vm profile      : interpreter" in out


def test_pure_get_workload_has_no_writes(capsys):
    assert main(["--clients", "2", "--requests", "3", "--get-fraction", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "server read mean" in out
    assert "server write mean" not in out


def test_deterministic_for_seed(capsys):
    main(["--clients", "2", "--requests", "3", "--seed", "9"])
    first = capsys.readouterr().out
    main(["--clients", "2", "--requests", "3", "--seed", "9"])
    second = capsys.readouterr().out
    assert first == second

"""Workload generation: arrival processes, retry/abort accounting."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.webserver import (
    HostConfig,
    WebServerConfig,
    WebServerHost,
    WorkloadConfig,
    WorkloadGenerator,
)


def test_config_validates_arrival_knobs():
    with pytest.raises(ReproError):
        WorkloadConfig(arrival="batch")
    with pytest.raises(ReproError):
        WorkloadConfig(arrival="open", arrival_rate=0.0)
    assert WorkloadConfig(arrival="open", arrival_rate=50.0).arrival == "open"


def test_closed_loop_issues_every_request():
    host = WebServerHost(HostConfig())
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=3, requests_per_client=4, seed=5)).run()
    assert result.count == 12
    assert result.attempted == 12
    assert result.aborted == 0
    assert result.architecture == "thread"
    assert result.threads_spawned == 12
    assert result.connections_accepted == 12
    assert result.peak_processes >= 2
    assert result.throughput > 0
    assert result.latencies.count == 12


def test_closed_loop_is_deterministic():
    def run_once():
        host = WebServerHost(HostConfig())
        result = WorkloadGenerator(host, WorkloadConfig(
            num_clients=4, requests_per_client=5, seed=7)).run()
        return ([(r.method, r.path, r.status, r.elapsed) for r in result.results],
                result.duration)

    assert run_once() == run_once()


def test_open_loop_poisson_arrivals_complete():
    host = WebServerHost(HostConfig())
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=4, requests_per_client=5, seed=3,
        arrival="open", arrival_rate=400.0)).run()
    assert result.count == 20
    assert result.error_count == 0
    # Open arrivals never think: duration ≈ arrival span + tail latency.
    assert result.duration > 0


def test_open_loop_differs_from_closed_loop():
    def run(arrival):
        host = WebServerHost(HostConfig())
        return WorkloadGenerator(host, WorkloadConfig(
            num_clients=4, requests_per_client=5, seed=3,
            arrival=arrival, arrival_rate=400.0)).run()

    closed, opened = run("closed"), run("open")
    assert closed.count == opened.count == 20
    assert closed.duration != opened.duration


def test_open_loop_on_eventloop_architecture():
    host = WebServerHost(HostConfig(architecture="eventloop"))
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=4, requests_per_client=5, seed=3,
        arrival="open", arrival_rate=400.0)).run()
    assert result.count == 20
    assert result.architecture == "eventloop"
    assert result.threads_spawned == 0
    assert result.peak_processes == 1


def test_client_retry_recovers_dropped_connections():
    plan = FaultPlan(seed=77, specs=(
        FaultSpec(kind="net.drop", target="server", probability=0.2),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=4, requests_per_client=8, seed=77,
        retry=RetryPolicy(max_attempts=6))).run()
    assert host.injector.injected.value > 0
    assert result.retries > 0
    assert result.recovered > 0
    assert result.aborted == 0
    assert result.count == 32


def test_aborts_counted_not_raised_without_retry():
    # Every connection's first receive is dropped and there is no
    # retry budget: every request aborts, none crash the workload.
    plan = FaultPlan(seed=5, specs=(
        FaultSpec(kind="net.drop", target="server", probability=1.0),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=2, requests_per_client=3, seed=5)).run()
    assert result.count == 0
    assert result.aborted == 6
    assert result.attempted == 6
    assert set(result.abort_reasons) == {"ConnectionReset"}


def test_exhausted_retries_count_as_aborts():
    plan = FaultPlan(seed=5, specs=(
        FaultSpec(kind="net.drop", target="server", probability=1.0),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=2, requests_per_client=2, seed=5,
        retry=RetryPolicy(max_attempts=3))).run()
    assert result.count == 0
    assert result.aborted == 4
    assert result.retries > 0
    assert set(result.abort_reasons) == {"RetryExhausted"}


def test_aborted_requests_excluded_from_throughput():
    plan = FaultPlan(seed=5, specs=(
        FaultSpec(kind="net.drop", target="server", probability=1.0),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    result = WorkloadGenerator(host, WorkloadConfig(
        num_clients=2, requests_per_client=2, seed=5)).run()
    assert result.throughput == 0.0
    assert result.latencies.count == 0

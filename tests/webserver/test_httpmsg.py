"""Tests for HTTP message building and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HttpError
from repro.webserver import HttpRequest, HttpResponse, parse_request
from repro.webserver.client import _parse_response_header


def test_get_request_wire_format():
    req = HttpRequest("GET", "/images/a.jpg")
    text = req.header_text()
    assert text.startswith("GET /images/a.jpg HTTP/1.0\r\n")
    assert text.endswith("\r\n\r\n")
    assert req.wire_bytes == len(text)


def test_post_request_carries_content_length():
    req = HttpRequest("POST", "/upload", body_bytes=1234)
    assert "Content-Length: 1234" in req.header_text()
    assert req.wire_bytes == len(req.header_text()) + 1234


def test_request_validation():
    with pytest.raises(HttpError):
        HttpRequest("DELETE", "/x")
    with pytest.raises(HttpError):
        HttpRequest("GET", "relative/path")
    with pytest.raises(HttpError):
        HttpRequest("GET", "/x", body_bytes=10)
    with pytest.raises(HttpError):
        HttpRequest("POST", "/x", body_bytes=-1)


def test_parse_request_roundtrip():
    for req in (
        HttpRequest("GET", "/a/b.html"),
        HttpRequest("POST", "/upload", body_bytes=999),
    ):
        assert parse_request(req.header_text()) == req


def test_parse_request_errors():
    with pytest.raises(HttpError) as e:
        parse_request("")
    assert e.value.status == 400
    with pytest.raises(HttpError):
        parse_request("GET /x\r\n\r\n")  # missing version
    with pytest.raises(HttpError):
        parse_request("GET /x FTP/1.0\r\n\r\n")
    with pytest.raises(HttpError) as e:
        parse_request("PATCH /x HTTP/1.0\r\n\r\n")
    assert e.value.status == 405
    with pytest.raises(HttpError):
        parse_request("POST /x HTTP/1.0\r\nContent-Length: soup\r\n\r\n")
    with pytest.raises(HttpError):
        parse_request("GET /x HTTP/1.0\r\nbroken header line\r\n\r\n")


def test_response_wire_format():
    resp = HttpResponse(200, body_bytes=500)
    text = resp.header_text()
    assert text.startswith("HTTP/1.0 200 OK\r\n")
    assert "Content-Length: 500" in text
    assert resp.wire_bytes == len(text) + 500


def test_response_validation():
    with pytest.raises(HttpError):
        HttpResponse(299)
    with pytest.raises(HttpError):
        HttpResponse(200, body_bytes=-1)


def test_client_parses_response_header():
    resp = HttpResponse(404, body_bytes=0)
    status, length = _parse_response_header(resp.header_text())
    assert status == 404
    assert length == 0
    with pytest.raises(HttpError):
        _parse_response_header("garbage\r\n\r\n")
    with pytest.raises(HttpError):
        _parse_response_header("HTTP/1.0 abc OK\r\n\r\n")


path_strategy = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789._-/"),
    min_size=1,
    max_size=40,
).map(lambda s: "/" + s.replace("//", "/"))


@given(path_strategy, st.integers(min_value=0, max_value=10**9))
def test_post_roundtrip_property(path, nbytes):
    req = HttpRequest("POST", path, body_bytes=nbytes)
    parsed = parse_request(req.header_text())
    assert parsed == req


@given(path_strategy)
def test_get_roundtrip_property(path):
    req = HttpRequest("GET", path)
    assert parse_request(req.header_text()) == req

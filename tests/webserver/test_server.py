"""End-to-end tests for the multithreaded web server."""

import pytest

from repro.webserver import (
    HostConfig,
    WebServerHost,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.webserver.host import PAPER_IMAGE_FILES


@pytest.fixture
def host():
    return WebServerHost()


def test_paper_file_population():
    assert sorted(PAPER_IMAGE_FILES.values()) == [7501, 14063, 50607]


def test_get_returns_whole_file(host):
    [r] = host.run_request_sequence([("GET", "/images/photo2.jpg")])
    assert r.status == 200
    assert r.body_bytes == 7501


def test_get_missing_file_404(host):
    [r] = host.run_request_sequence([("GET", "/nope.gif")])
    assert r.status == 404
    assert host.metrics.errors == 1


def test_post_creates_new_file_each_time(host):
    files_before = set(host.fs.list_files())
    host.run_request_sequence([("POST", "/u", 1000), ("POST", "/u", 2000)])
    new = set(host.fs.list_files()) - files_before
    assert len(new) == 2  # random-number names, no collisions
    sizes = sorted(host.fs.size_of(p) for p in new)
    assert sizes == [1000, 2000]
    for p in new:
        assert p.startswith("/www/uploads/")


def test_server_records_read_and_write_times(host):
    host.run_request_sequence(
        [("GET", "/images/photo3.jpg"), ("POST", "/u", 5000)]
    )
    get_rec, post_rec = host.metrics.requests
    assert get_rec.method == "GET"
    assert get_rec.read_time is not None and get_rec.read_time > 0
    assert get_rec.write_time is None
    assert post_rec.method == "POST"
    assert post_rec.write_time is not None and post_rec.write_time > 0
    assert post_rec.read_time is None


def test_each_request_spawns_a_thread(host):
    host.run_request_sequence([("GET", "/images/photo1.jpg")] * 5)
    assert host.server.threads_spawned.value == 5
    assert host.runtime.threads_started.value == 5


def test_first_read_slower_than_subsequent(host):
    """Table 6 / Figure 6: 'the time spent in reading a file for the
    first time is greater than that taken for subsequent reads'."""
    host.run_request_sequence([("GET", "/images/photo3.jpg")] * 6)
    times = [r.read_time for r in host.metrics.gets()]
    assert len(times) == 6
    assert times[0] > 10 * max(times[1:])
    assert all(t > 0 for t in times)


def test_jit_contributes_to_first_request(host):
    """Reason 2 in §4.2: the JIT compiles the handler chain on the
    first request only."""
    host.run_request_sequence([("GET", "/images/photo2.jpg")])
    compiled_after_first = host.runtime.jit.methods_compiled.value
    assert compiled_after_first >= 2  # StartListen + DoGet at minimum
    host.run_request_sequence([("GET", "/images/photo2.jpg")])
    assert host.runtime.jit.methods_compiled.value == compiled_after_first


def test_write_slower_than_warm_read_same_size(host):
    """Table 5 shape: POST (durable write) beats nothing — it is slower
    than a warm read of the same number of bytes."""
    host.run_request_sequence(
        [
            ("GET", "/images/photo2.jpg"),  # warm the file
            ("GET", "/images/photo2.jpg"),
            ("POST", "/u", 7501),
        ]
    )
    warm_read = host.metrics.gets()[1].read_time
    write = host.metrics.posts()[0].write_time
    assert write > warm_read


def test_first_overall_operation_is_slowest(host):
    """'the first file I/O operation by the server takes more time
    than the subsequent read or write operations' (given equal-size
    operations)."""
    host.run_request_sequence([("GET", "/images/photo3.jpg")] * 3)
    reads = [r.read_time for r in host.metrics.gets()]
    assert reads[0] == max(reads)


def test_bad_request_gets_error_response(host):
    from repro.webserver.httpmsg import HttpRequest

    client = host.client()

    def driver():
        # Hand-craft a malformed wire message.
        engine = host.engine
        sock = yield from host.network.connect("localhost", 5050)
        bad = "NONSENSE\r\n\r\n"
        yield from sock.send(len(bad), payload=bad)
        got = yield from sock.receive(8192)
        payloads = sock.take_payloads()
        return payloads[0] if payloads else None

    text = host.engine.run_process(driver())
    assert text is not None and ("400" in text or "405" in text)
    assert host.metrics.errors == 1
    # The malformed request travelled through the VM's managed
    # exception machinery (thrown by ReceiveRequest, caught by
    # StartListen's protected region).
    assert host.runtime.interpreter.exceptions_caught.value == 1


def test_concurrent_clients_all_served():
    host = WebServerHost()
    result = WorkloadGenerator(
        host,
        WorkloadConfig(num_clients=6, requests_per_client=5, seed=3),
    ).run()
    assert result.count == 30
    assert result.error_count == 0
    assert result.threads_spawned == 30
    assert result.throughput > 0
    assert result.mean_latency_ms > 0


def test_workload_reproducible_with_seed():
    def run(seed):
        host = WebServerHost()
        return WorkloadGenerator(
            host, WorkloadConfig(num_clients=3, requests_per_client=4, seed=seed)
        ).run()

    a, b = run(5), run(5)
    assert [r.path for r in a.results] == [r.path for r in b.results]
    assert a.duration == pytest.approx(b.duration)
    c = run(6)
    assert [r.path for r in a.results] != [r.path for r in c.results] or (
        a.duration != pytest.approx(c.duration)
    )


def test_workload_config_validation():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        WorkloadConfig(num_clients=0)
    with pytest.raises(ReproError):
        WorkloadConfig(get_fraction=1.5)
    with pytest.raises(ReproError):
        WorkloadConfig(post_size_range=(10, 5))


def test_server_stop_refuses_new_connections(host):
    host.run_request_sequence([("GET", "/images/photo2.jpg")])
    host.server.stop()
    from repro.errors import SimulationError

    def driver():
        yield from host.network.connect("localhost", 5050)

    proc = host.engine.process(driver())
    host.engine.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_double_start_rejected(host):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        host.engine.run_process(host.server.start())


def test_server_latencies_registered_in_metrics_registry(host):
    host.run_request_sequence(
        [("GET", "/images/photo3.jpg"), ("POST", "/u", 5000)]
    )
    snap = host.engine.metrics.snapshot()
    for name in ("webserver.read_ms", "webserver.write_ms",
                 "webserver.response_ms"):
        entry = snap[name]
        assert entry["type"] == "tally"
        assert entry["count"] >= 1
        assert entry["labels"]["unit"] == "ms"
    # The ms views report the same latencies as the raw tallies, x1e3.
    assert snap["webserver.read_ms"]["mean"] == pytest.approx(
        snap["server.read"]["mean"] * 1e3
    )
    registry = host.engine.metrics
    view = registry.get("webserver.response_ms")
    assert view.percentile(50) == pytest.approx(
        host.metrics.response_times.percentile(50) * 1e3
    )
    assert snap["webserver.errors"] == {
        "type": "gauge", "value": 0,
        "labels": {"server": host.config.server.host,
                   "architecture": host.server.ARCHITECTURE},
    }

"""MetricsRegistry: registration, labels, and snapshot shapes for
every collector type."""

from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.obs import MetricsRegistry
from repro.sim import Counter, Engine, Histogram, Tally, TimeWeighted


def test_snapshot_counter():
    reg = MetricsRegistry()
    counter = Counter("ops")
    counter.add(3)
    reg.register("ops", counter)
    assert reg.snapshot()["ops"] == {"type": "counter", "value": 3}


def test_snapshot_tally():
    reg = MetricsRegistry()
    tally = Tally("lat")
    tally.extend([1.0, 3.0])
    reg.register("lat", tally)
    entry = reg.snapshot()["lat"]
    assert entry["type"] == "tally"
    assert entry["count"] == 2
    assert entry["mean"] == 2.0
    assert (entry["min"], entry["max"]) == (1.0, 3.0)


def test_snapshot_empty_tally_does_not_raise():
    reg = MetricsRegistry()
    reg.register("empty", Tally("empty"))
    entry = reg.snapshot()["empty"]
    assert entry == {"type": "tally", "count": 0, "total": 0.0,
                     "mean": None, "min": None, "max": None}


def test_snapshot_time_weighted():
    eng = Engine()
    tw = TimeWeighted(eng, initial=2.0)
    reg = MetricsRegistry()
    reg.register("util", tw)
    entry = reg.snapshot()["util"]
    assert entry["type"] == "time_weighted"
    assert entry["current"] == 2.0


def test_snapshot_histogram():
    reg = MetricsRegistry()
    hist = Histogram(0.0, 10.0, bins=2, name="h")
    hist.record(1.0)
    hist.record(11.0)
    reg.register("h", hist)
    entry = reg.snapshot()["h"]
    assert entry["type"] == "histogram"
    assert entry["counts"] == [1, 0]
    assert entry["overflow"] == 1


def test_snapshot_gauge_and_labels():
    reg = MetricsRegistry()
    name = reg.gauge("depth", lambda: 7, device="d0")
    entry = reg.snapshot()[name]
    assert entry == {"type": "gauge", "value": 7, "labels": {"device": "d0"}}
    assert reg.labels_of(name) == {"device": "d0"}


def test_snapshot_dataclass_object():
    @dataclass
    class Stats:
        hits: int = 4
        misses: int = 1

    reg = MetricsRegistry()
    reg.register("cache", Stats())
    entry = reg.snapshot()["cache"]
    assert entry == {"type": "object", "fields": {"hits": 4, "misses": 1}}


def test_register_deduplicates_names():
    reg = MetricsRegistry()
    assert reg.register("x", Counter()) == "x"
    assert reg.register("x", Counter()) == "x#2"
    assert reg.register("x", Counter()) == "x#3"
    assert len(reg) == 3
    assert "x#2" in reg


def test_register_rejects_empty_name():
    reg = MetricsRegistry()
    with pytest.raises(SimulationError):
        reg.register("", Counter())


def test_gauge_rejects_non_callable():
    reg = MetricsRegistry()
    with pytest.raises(SimulationError):
        reg.gauge("bad", 42)


def test_get_unknown_name_raises():
    reg = MetricsRegistry()
    with pytest.raises(SimulationError):
        reg.get("missing")


def test_engine_owns_a_registry():
    eng = Engine()
    assert isinstance(eng.metrics, MetricsRegistry)
    assert len(eng.metrics) == 0


def test_stack_components_self_register():
    from repro.io import CacheParams, FileSystem
    from repro.storage import Disk

    eng = Engine()
    disk = Disk(eng, name="d0")
    FileSystem(eng, disk, cache_params=CacheParams(capacity_pages=64))
    names = eng.metrics.names()
    assert any(n.startswith("d0.") for n in names)
    assert any(n.startswith("fs.") for n in names)
    assert any(n.startswith("cache.") for n in names)
    snap = eng.metrics.snapshot()
    assert snap  # every entry summarizes without raising

"""Trace analysis: rollup, critical path, counters, DFG, parity."""

import pytest

from repro.errors import SimulationError
from repro.obs import TraceEvent, Tracer, analyze, read_jsonl, write_jsonl
from repro.obs.analysis import layer_of, percentiles


def _ev(kind, name, cat, start, end, span_id, parent=None, pid=1, tid=0,
        **attrs):
    return TraceEvent(kind=kind, name=name, category=cat, start=start,
                      end=end, span_id=span_id, parent_id=parent, pid=pid,
                      tid=tid, attrs=attrs)


def _nested_trace():
    """A run shaped like the real stack: root process span, an fs.read
    containing a cache.fetch containing a disk.read — all recorded
    retroactively (no parent links), exactly like tracer.complete()."""
    return [
        _ev("span", "disk.read", "storage", 0.2, 0.5, 1, device="d0"),
        _ev("span", "cache.fetch", "io", 0.1, 0.6, 2),
        _ev("span", "fs.read", "io", 0.1, 0.7, 3),
        _ev("span", "fs.close", "io", 0.7, 0.8, 4),
        _ev("span", "process:main", "sim", 0.0, 1.0, 5),
        _ev("counter", "d0.queue", "storage", 0.2, 0.2, 6, value=2.0),
        _ev("counter", "d0.queue", "storage", 0.6, 0.6, 7, value=0.0),
        _ev("instant", "cache.evict", "io", 0.65, 0.65, 8, page=3),
    ]


def test_rollup_self_vs_total_with_inferred_nesting():
    rollup = analyze(_nested_trace()).rollup()
    root = rollup[("sim", "process:main")]
    assert root["total_s"] == pytest.approx(1.0)
    # Root's direct children: fs.read (0.6) and fs.close (0.1).
    assert root["self_s"] == pytest.approx(0.3)
    fs_read = rollup[("io", "fs.read")]
    assert fs_read["total_s"] == pytest.approx(0.6)
    assert fs_read["self_s"] == pytest.approx(0.1)  # minus cache.fetch
    cache = rollup[("io", "cache.fetch")]
    assert cache["self_s"] == pytest.approx(0.2)    # minus disk.read
    disk = rollup[("storage", "disk.read")]
    assert disk["self_s"] == pytest.approx(disk["total_s"])  # leaf
    for row in rollup.values():
        assert row["p50_s"] <= row["p90_s"] <= row["p99_s"] <= row["max_s"] + 1e-12


def test_explicit_parent_links_win_over_containment():
    events = [
        _ev("span", "outer", "app", 0.0, 1.0, 1),
        _ev("span", "inner", "app", 0.2, 0.4, 2, parent=1),
    ]
    analysis = analyze(events)
    [outer] = [s for s in analysis.spans if s.name == "outer"]
    assert [c.name for c in analysis.children_of(outer)] == ["inner"]
    assert analysis.self_time(outer) == pytest.approx(0.8)


def test_critical_path_descends_longest_children():
    path = analyze(_nested_trace()).critical_path()
    assert [step.name for step in path] == [
        "process:main", "fs.read", "cache.fetch", "disk.read",
    ]
    assert [step.layer for step in path] == [
        "sim", "filesystem", "cache", "disk",
    ]
    assert path[0].depth == 0 and path[-1].depth == 3
    # Step self times are consistent with the rollup's definitions.
    assert path[-1].self_s == pytest.approx(0.3)


def test_layer_attribution_covers_critical_path():
    analysis = analyze(_nested_trace())
    attribution = analysis.layer_attribution()
    assert attribution["disk"] == pytest.approx(0.3)
    assert attribution["cache"] == pytest.approx(0.2)
    # Root duration minus the off-path fs.close sibling (0.1 s).
    assert sum(attribution.values()) == pytest.approx(0.9)


def test_counter_stats_time_weighted_mean():
    analysis = analyze(_nested_trace())
    stats = analysis.counter_stats()["d0.queue"]
    assert stats["samples"] == 2
    assert stats["max"] == 2.0 and stats["last"] == 0.0
    # Value 2.0 held for the whole inter-sample window [0.2, 0.6].
    assert stats["mean"] == pytest.approx(2.0)


def test_utilization_disk_busy_and_queues():
    util = analyze(_nested_trace()).utilization()
    # disk.read [0.2, 0.5] over trace range [0.0, 1.0].
    assert util["disk_busy"]["d0"] == pytest.approx(0.3)
    assert util["queues"]["d0.queue"]["max_depth"] == 2.0
    assert util["cache_hit_ratio"] is None


def test_disk_busy_merges_overlapping_intervals():
    events = [
        _ev("span", "disk.read", "storage", 0.0, 0.6, 1, device="d0"),
        _ev("span", "disk.write", "storage", 0.4, 0.8, 2, device="d0"),
        _ev("span", "process:main", "sim", 0.0, 1.0, 3),
    ]
    busy = analyze(events).disk_busy()
    assert busy["d0"] == pytest.approx(0.8)  # union, not sum


def test_follows_graph_counts_and_hot_path():
    events = [
        _ev("span", "fs.open", "io", 0.0, 0.1, 1),
        _ev("span", "fs.read", "io", 0.1, 0.2, 2),
        _ev("span", "fs.read", "io", 0.2, 0.3, 3),
        _ev("span", "fs.close", "io", 0.3, 0.4, 4),
    ]
    analysis = analyze(events)
    edges = analysis.follows_graph()
    assert edges[("fs.open", "fs.read")] == 1
    assert edges[("fs.read", "fs.read")] == 1
    assert edges[("fs.read", "fs.close")] == 1
    hot = analysis.hot_path(edges)
    assert hot[0] in {"fs.open", "fs.read"} and len(hot) >= 2


def test_follows_graph_separates_tracks():
    events = [
        _ev("span", "fs.read", "io", 0.0, 0.1, 1, tid=1),
        _ev("span", "fs.write", "io", 0.2, 0.3, 2, tid=2),
    ]
    assert analyze(events).follows_graph(prefix="fs.") == {}


def test_percentiles_helper_degenerate_inputs():
    assert percentiles([]) == {50: 0.0, 90: 0.0, 99: 0.0}
    assert percentiles([4.2, 4.2, 4.2]) == {50: 4.2, 90: 4.2, 99: 4.2}
    spread = percentiles(list(range(101)))
    assert spread[50] == pytest.approx(50.5, abs=1.0)
    assert spread[99] == pytest.approx(100.0, abs=2.0)


def test_layer_of_prefix_and_category_fallback():
    assert layer_of("disk.read", "storage") == "disk"
    assert layer_of("cache.fetch", "io") == "cache"
    assert layer_of("stream.open", "io") == "filesystem"
    assert layer_of("jit.compile", "jit") == "jit"
    assert layer_of("http.get", "webserver") == "webserver"
    assert layer_of("unknown.thing", "io") == "filesystem"
    assert layer_of("unknown.thing", "") == "other"


def test_analyze_rejects_non_events():
    with pytest.raises(SimulationError):
        analyze([{"kind": "span"}])


def test_analysis_parity_live_tracer_vs_reloaded_jsonl(tmp_path):
    """Analysis must give identical answers on a live tracer and on
    the same trace written to JSONL and read back (ordering, labels
    and counter samples all preserved)."""
    from repro.bench.experiments.tables_traces import run_tab1

    tracer = Tracer()
    run_tab1(tracer=tracer)
    path = tmp_path / "tab1.jsonl"
    write_jsonl(str(path), tracer)
    live = analyze(tracer)
    reloaded = analyze(read_jsonl(str(path)))

    assert len(live.events) == len(reloaded.events)
    assert [e.span_id for e in live.events] == \
        [e.span_id for e in reloaded.events]
    assert live.rollup() == reloaded.rollup()
    assert live.critical_path() == reloaded.critical_path()
    assert live.counter_stats() == reloaded.counter_stats()
    assert live.follows_graph() == reloaded.follows_graph()
    assert live.utilization() == reloaded.utilization()

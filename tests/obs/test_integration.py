"""End-to-end observability: one shared tracer across the replay and
webserver stacks, and the bench CLI's --trace-out flag."""

import json

from repro.bench.__main__ import main as bench_main
from repro.bench.experiments import run_experiment
from repro.obs import Tracer
from repro.traces import ReplayConfig, TraceReplayer, generate_dmine


def test_replay_spans_cover_the_stack():
    tracer = Tracer()
    header, records = generate_dmine()
    TraceReplayer(ReplayConfig(warmup=False, tracer=tracer)).replay(
        header, records, "dmine"
    )
    cats = set(tracer.categories_seen())
    assert {"sim", "io", "storage", "replay", "jit"} <= cats
    # Per-record replay spans carry the measured flag and offsets.
    replayed = tracer.spans("replay")
    assert replayed
    assert {"index", "offset", "length", "measured"} <= set(replayed[0].attrs)


def test_webserver_request_spans():
    tracer = Tracer()
    run_experiment("tab6", tracer=tracer, trials=2)
    gets = [s for s in tracer.spans("webserver") if s.name == "http.get"]
    assert len(gets) == 2
    assert gets[0].attrs["status"] == 200
    assert gets[0].duration > 0


def test_run_experiment_drops_unsupported_tracer_kwarg():
    # fig2's runner takes no tracer; passing one must not raise.
    result = run_experiment("fig2", tracer=Tracer())
    assert result.exp_id == "fig2"


def test_bench_cli_trace_out(tmp_path, capsys):
    out = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    rc = bench_main(["tab1", "--trace-out", str(out),
                     "--trace-jsonl", str(jsonl)])
    assert rc == 0
    doc = json.loads(out.read_text())
    span_cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
    # The acceptance bar: spans from at least four layers of the stack.
    assert len(span_cats & {"sim", "io", "storage", "replay", "jit",
                            "webserver"}) >= 4
    assert jsonl.exists()
    assert "wrote" in capsys.readouterr().out


def test_metrics_snapshot_covers_webserver_stack():
    from repro.webserver import WebServerHost

    host = WebServerHost()
    host.run_request_sequence([("GET", "/images/photo3.jpg")])
    snap = host.engine.metrics.snapshot()
    for prefix in ("server.", "jit.", "cache.", "fs."):
        assert any(k.startswith(prefix) for k in snap), prefix
    json.dumps(snap)  # the whole snapshot must be JSON-ready

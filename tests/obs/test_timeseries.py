"""Time-series telemetry: windowed scraping, determinism, layering."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import (
    Telemetry,
    TelemetryConfig,
    TelemetrySampler,
    metric_layer,
    read_series_jsonl,
    write_series_jsonl,
)
from repro.obs.export import series_lines
from repro.obs.slo import AlertRule, SloSpec
from repro.sim import Counter, Engine, Histogram, Tally, TimeWeighted


def _engine_with_metrics():
    eng = Engine()
    tally = Tally("lat")
    counter = Counter("ops")
    eng.metrics.register("disk.latency", tally, device="d0")
    eng.metrics.register("fs.ops", counter)
    return eng, tally, counter


def _run(eng, proc):
    eng.process(proc)
    eng.run()


# -- layer derivation --------------------------------------------------------

def test_metric_layer_prefixes_and_labels():
    assert metric_layer("cache.stats") == "cache"
    assert metric_layer("fs.ops") == "filesystem"
    assert metric_layer("heap.used") == "vm"
    assert metric_layer("jit.compiles") == "jit"
    assert metric_layer("retry.retries") == "resilience"
    assert metric_layer("unknown.thing") == "other"
    # Registry labels outrank name prefixes.
    assert metric_layer("ssd0.service", {"device": "ssd0"}) == "disk"
    assert metric_layer("latency", {"server": "localhost"}) == "webserver"


# -- sampler windows ---------------------------------------------------------

def test_sampler_windows_are_deltas():
    """Each observation lands in exactly one window."""
    eng, tally, counter = _engine_with_metrics()
    sampler = TelemetrySampler(eng, TelemetryConfig(interval=1.0)).start()

    def proc():
        tally.record(0.010)
        counter.add(3)
        yield eng.timeout(1.5)     # window 0 boundary at t=1
        tally.record(0.020)
        tally.record(0.040)
        counter.add(2)
        yield eng.timeout(1.0)     # window 1 boundary at t=2

    _run(eng, proc())
    sampler.finish()
    samples = [r for r in sampler.records if r["kind"] == "sample"]
    lat = [r for r in samples if r["metric"] == "disk.latency"]
    ops = [r for r in samples if r["metric"] == "fs.ops"]
    assert [r["stats"]["count"] for r in lat] == [1, 2, 0]
    assert lat[0]["stats"]["sum"] == pytest.approx(0.010)
    assert lat[1]["stats"]["mean"] == pytest.approx(0.030)
    assert lat[1]["stats"]["min"] == pytest.approx(0.020)
    assert lat[1]["stats"]["max"] == pytest.approx(0.040)
    # Deltas sum to the counter's final value.
    assert [r["stats"]["delta"] for r in ops] == [3, 2, 0]
    assert ops[-1]["stats"]["value"] == 5
    # Window boundaries are contiguous on simulated time.
    assert [(r["t0"], r["t1"]) for r in ops] == [(0.0, 1.0), (1.0, 2.0),
                                                (2.0, 2.5)]


def test_sampler_tally_window_percentiles():
    eng, tally, _ = _engine_with_metrics()
    sampler = TelemetrySampler(eng, TelemetryConfig(interval=1.0)).start()

    def proc():
        for ms in range(1, 11):
            tally.record(ms * 1e-3)
        yield eng.timeout(1.0)

    _run(eng, proc())
    sampler.finish()
    stats = next(r for r in sampler.records
                 if r["kind"] == "sample"
                 and r["metric"] == "disk.latency")["stats"]
    assert stats["count"] == 10
    assert stats["p50"] <= stats["p90"] <= stats["p99"]
    assert 0.001 <= stats["p50"] <= 0.010


def test_sampler_time_weighted_window_mean_is_exact():
    eng = Engine()
    tw = TimeWeighted(eng, initial=0.0)
    eng.metrics.register("fs.depth", tw)
    sampler = TelemetrySampler(eng, TelemetryConfig(interval=2.0)).start()

    def proc():
        yield eng.timeout(2.0)   # window 0: flat 0.0
        tw.record(4.0)
        yield eng.timeout(1.0)
        tw.record(0.0)
        yield eng.timeout(1.0)   # window 1: 4.0 for 1s, 0.0 for 1s

    _run(eng, proc())
    sampler.finish()
    means = [r["stats"]["mean"] for r in sampler.records
             if r["kind"] == "sample" and r["metric"] == "fs.depth"]
    assert means[0] == pytest.approx(0.0)
    assert means[1] == pytest.approx(2.0)


def test_sampler_histogram_window_count_deltas():
    eng = Engine()
    hist = Histogram(0.0, 1.0, bins=4)
    eng.metrics.register("fs.sizes", hist)
    sampler = TelemetrySampler(eng, TelemetryConfig(interval=1.0)).start()

    def proc():
        hist.record(0.1)
        hist.record(0.9)
        yield eng.timeout(1.5)
        hist.record(0.9)
        yield eng.timeout(1.0)

    _run(eng, proc())
    sampler.finish()
    windows = [r["stats"] for r in sampler.records
               if r["kind"] == "sample" and r["metric"] == "fs.sizes"]
    assert windows[0]["count"] == 2
    assert windows[1]["count"] == 1
    assert windows[1]["counts"] == [0, 0, 0, 1]


def test_sampler_labels_merge_registry_sampler_and_layer():
    eng, _, _ = _engine_with_metrics()
    sampler = TelemetrySampler(
        eng, TelemetryConfig(interval=1.0), node="n0").start()

    def proc():
        yield eng.timeout(1.0)

    _run(eng, proc())
    sampler.finish()
    lat = next(r for r in sampler.records
               if r["kind"] == "sample" and r["metric"] == "disk.latency")
    assert lat["labels"] == {"device": "d0", "node": "n0", "layer": "disk"}


def test_sampler_metric_prefix_filter():
    eng, _, _ = _engine_with_metrics()
    sampler = TelemetrySampler(
        eng, TelemetryConfig(interval=1.0, metrics=("fs.",))).start()

    def proc():
        yield eng.timeout(1.0)

    _run(eng, proc())
    sampler.finish()
    metrics = {r["metric"] for r in sampler.records if r["kind"] == "sample"}
    assert metrics == {"fs.ops"}


# -- lifecycle & non-perturbation -------------------------------------------

def test_sampling_never_extends_or_perturbs_the_run():
    def workload(eng, tally):
        def proc():
            for i in range(5):
                tally.record(0.001 * (i + 1))
                yield eng.timeout(0.3)
        return proc()

    plain = Engine()
    t1 = Tally("lat")
    plain.metrics.register("disk.latency", t1)
    plain.process(workload(plain, t1))
    plain.run()

    sampled = Engine()
    t2 = Tally("lat")
    sampled.metrics.register("disk.latency", t2)
    sampler = TelemetrySampler(
        sampled, TelemetryConfig(interval=0.1)).start()
    sampled.process(workload(sampled, t2))
    sampled.run()
    sampler.finish()

    assert sampled.now == plain.now        # clock not extended
    assert t2.values == t1.values          # results untouched
    n_windows = len([r for r in sampler.records if r["kind"] == "sample"])
    assert n_windows >= 12                 # ~1.5s at 100ms + final partial


def test_finish_takes_final_partial_window_and_is_idempotent():
    eng, tally, _ = _engine_with_metrics()
    sampler = TelemetrySampler(eng, TelemetryConfig(interval=1.0)).start()

    def proc():
        yield eng.timeout(1.0)
        tally.record(0.005)
        yield eng.timeout(0.25)  # past the last tick: partial window

    _run(eng, proc())
    first = list(sampler.finish())
    assert sampler.finish() == first  # idempotent
    lat = [r for r in first
           if r["kind"] == "sample" and r["metric"] == "disk.latency"]
    assert lat[-1]["t1"] == pytest.approx(1.25)
    assert lat[-1]["stats"]["count"] == 1


def test_start_twice_and_finish_before_start_raise():
    eng, _, _ = _engine_with_metrics()
    sampler = TelemetrySampler(eng, TelemetryConfig(interval=1.0))
    with pytest.raises(SimulationError):
        sampler.finish()
    sampler.start()
    with pytest.raises(SimulationError):
        sampler.start()


def test_config_rejects_non_positive_interval():
    with pytest.raises(SimulationError):
        TelemetryConfig(interval=0.0)


# -- alerts in the stream ----------------------------------------------------

def _burst_rules():
    return (AlertRule(
        SloSpec("slow-reads", "latency", "disk.latency",
                objective=0.010, stat="max"),
        for_windows=1, clear_windows=1,
    ),)


def test_alerts_fire_and_resolve_inside_the_stream():
    eng, tally, _ = _engine_with_metrics()
    sampler = TelemetrySampler(
        eng, TelemetryConfig(interval=1.0, rules=_burst_rules())).start()

    def proc():
        tally.record(0.001)
        yield eng.timeout(1.5)   # w0 ok
        tally.record(0.050)      # breach in w1
        yield eng.timeout(1.0)
        tally.record(0.002)      # recovery in w2
        yield eng.timeout(1.0)

    _run(eng, proc())
    sampler.finish()
    alerts = [r for r in sampler.records if r["kind"] == "alert"]
    assert [(a["state"], a["window"]) for a in alerts] == [
        ("firing", 1), ("resolved", 2)]
    assert alerts[0]["t"] == pytest.approx(2.0)
    summary = next(r for r in sampler.records if r["kind"] == "slo")
    assert summary["fired"] == summary["resolved"] == 1
    assert summary["final_state"] == "ok"
    assert summary["worst"] == pytest.approx(0.050)
    # The header carries the rule description.
    header = sampler.records[0]
    assert header["kind"] == "telemetry.header"
    assert header["rules"][0]["name"] == "slow-reads"


# -- hub + byte determinism --------------------------------------------------

def _hub_run(seed_values):
    hub = Telemetry(TelemetryConfig(interval=0.5))
    eng = Engine()
    tally = Tally("lat")
    eng.metrics.register("disk.latency", tally, device="d0")
    sampler = hub.attach(eng, node="n0")

    def proc():
        for v in seed_values:
            tally.record(v)
            yield eng.timeout(0.2)

    eng.process(proc())
    eng.run()
    sampler.finish()
    return hub


def test_same_inputs_produce_byte_identical_series(tmp_path):
    values = [0.001, 0.004, 0.002, 0.009, 0.003]
    a, b = _hub_run(values), _hub_run(values)
    assert series_lines(a.records) == series_lines(b.records)
    pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    assert a.write(str(pa)) == b.write(str(pb))
    assert pa.read_bytes() == pb.read_bytes()


def test_series_jsonl_round_trip(tmp_path):
    hub = _hub_run([0.001, 0.002])
    path = tmp_path / "series.jsonl"
    n = hub.write(str(path))
    records = read_series_jsonl(str(path))
    assert len(records) == n
    assert records[0]["kind"] == "telemetry.header"
    kinds = {r["kind"] for r in records}
    assert "sample" in kinds


def test_series_floats_are_rounded_for_stability(tmp_path):
    path = tmp_path / "r.jsonl"
    write_series_jsonl(str(path), [
        {"kind": "sample", "stats": {"mean": 0.1 + 0.2}}])
    (record,) = read_series_jsonl(str(path))
    assert record["stats"]["mean"] == 0.3


def test_read_series_jsonl_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"no-kind": 1}\n')
    with pytest.raises(SimulationError):
        read_series_jsonl(str(bad))
    worse = tmp_path / "worse.jsonl"
    worse.write_text("{nope\n")
    with pytest.raises(SimulationError):
        read_series_jsonl(str(worse))


def test_hub_attach_overrides_interval_and_rules():
    hub = Telemetry(TelemetryConfig(interval=0.5))
    eng, tally, _ = _engine_with_metrics()
    sampler = hub.attach(eng, rules=_burst_rules(), interval=1.0)
    assert sampler.config.interval == 1.0
    assert sampler.config.rules == _burst_rules()
    assert hub.config.interval == 0.5  # hub config untouched
    assert hub.config.rules == ()

    def proc():
        tally.record(0.5)  # breaches 10ms objective
        yield eng.timeout(1.0)

    _run(eng, proc())
    hub.finish_all()  # finishes open samplers (idempotent with finish)
    assert any(r["kind"] == "alert" for r in hub.records)


def test_hub_write_merges_streams_in_attachment_order(tmp_path):
    hub = Telemetry(TelemetryConfig(interval=1.0))
    for node in ("n0", "n1"):
        eng, tally, _ = _engine_with_metrics()
        sampler = hub.attach(eng, node=node)

        def proc():
            tally.record(0.001)
            yield eng.timeout(1.0)

        eng.process(proc())
        eng.run()
        sampler.finish()
    path = tmp_path / "merged.jsonl"
    hub.write(str(path))
    headers = [r for r in read_series_jsonl(str(path))
               if r["kind"] == "telemetry.header"]
    assert [h["labels"]["node"] for h in headers] == ["n0", "n1"]


def test_sample_records_are_json_serializable():
    hub = _hub_run([0.001])
    for record in hub.records:
        json.dumps(record)

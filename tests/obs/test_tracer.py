"""Tracer core: spans on the simulated clock, nesting, capacity,
null-tracer zero-cost guarantees."""

import pytest

from repro.errors import SimulationError
from repro.obs import NULL_TRACER, NullTracer, Tracer, render_summary, summarize
from repro.sim import Engine


def test_span_times_follow_engine_clock():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        span = tracer.begin("outer", "test")
        yield eng.timeout(2.0)
        span.end()

    eng.process(proc())
    eng.run()
    (span,) = tracer.spans("test")
    assert span.start == 0.0
    assert span.end == 2.0
    assert span.duration == 2.0


def test_spans_nest_via_parent_ids():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        with tracer.span("outer", "test"):
            yield eng.timeout(1.0)
            with tracer.span("inner", "test"):
                yield eng.timeout(1.0)
            yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    spans = {s.name: s for s in tracer.spans("test")}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id is None
    # Inner closes first, so it is recorded first.
    assert [s.name for s in tracer.spans("test")] == ["inner", "outer"]
    assert spans["inner"].start == 1.0 and spans["inner"].end == 2.0
    assert spans["outer"].start == 0.0 and spans["outer"].end == 3.0


def test_sibling_spans_do_not_nest():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        with tracer.span("first", "test"):
            yield eng.timeout(1.0)
        with tracer.span("second", "test"):
            yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    spans = {s.name: s for s in tracer.spans("test")}
    assert spans["second"].parent_id is None


def test_complete_records_retroactive_span():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        start = eng.now
        yield eng.timeout(3.0)
        tracer.complete("op", "test", start, device="d0")

    eng.process(proc())
    eng.run()
    (span,) = tracer.spans("test")
    assert (span.start, span.end) == (0.0, 3.0)
    assert span.attrs == {"device": "d0"}


def test_complete_rejects_negative_duration():
    tracer = Tracer()
    Engine(tracer=tracer)
    with pytest.raises(SimulationError):
        tracer.complete("op", "test", start=5.0, end=1.0)


def test_double_end_rejected():
    tracer = Tracer()
    Engine(tracer=tracer)
    span = tracer.begin("op", "test")
    span.end()
    with pytest.raises(SimulationError):
        span.end()


def test_instants_and_counters():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        yield eng.timeout(1.0)
        tracer.instant("evict", "io", page=7)
        tracer.counter("queue", "storage", 3)

    eng.process(proc())
    eng.run()
    kinds = {e.kind: e for e in tracer.events if e.category in ("io", "storage")}
    assert kinds["instant"].attrs == {"page": 7}
    assert kinds["instant"].start == kinds["instant"].end == 1.0
    assert kinds["counter"].attrs == {"value": 3}


def test_category_filter_drops_unwanted():
    tracer = Tracer(categories=["keep"])
    Engine(tracer=tracer)
    tracer.instant("a", "keep")
    tracer.instant("b", "drop")
    tracer.complete("c", "drop", 0.0)
    assert [e.name for e in tracer.events] == ["a"]


def test_capacity_drops_oldest():
    tracer = Tracer(capacity=2)
    Engine(tracer=tracer)
    for i in range(5):
        tracer.instant(f"e{i}", "test")
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert [e.name for e in tracer.events] == ["e3", "e4"]


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Tracer(capacity=0)


def test_attach_opens_new_process_group():
    tracer = Tracer()
    Engine(tracer=tracer)
    tracer.instant("first", "test")
    Engine(tracer=tracer)
    tracer.name_process("second-run")
    tracer.instant("second", "test")
    pids = {e.name: e.pid for e in tracer.events if e.category == "test"}
    assert pids["second"] == pids["first"] + 1
    assert tracer.process_names[pids["second"]] == "second-run"


def test_engine_emits_run_and_process_spans():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc(), name="worker")
    eng.run()
    names = {s.name for s in tracer.spans("sim")}
    assert "engine.run" in names
    assert "process:worker" in names


def test_null_tracer_is_default_and_inert():
    eng = Engine()
    assert eng.tracer is NULL_TRACER
    assert not eng.tracer.enabled

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    assert len(eng.tracer) == 0


def test_null_tracer_api_is_noop():
    tracer = NullTracer()
    tracer.attach(object())
    tracer.name_process("x")
    with tracer.span("a", "b"):
        pass
    tracer.complete("a", "b", 0.0)
    tracer.instant("a")
    tracer.counter("a", "b", 1)
    assert len(tracer) == 0


def test_clear_resets_buffer_and_dropped():
    tracer = Tracer(capacity=1)
    Engine(tracer=tracer)
    tracer.instant("a", "t")
    tracer.instant("b", "t")
    assert tracer.dropped == 1
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_summarize_aggregates_spans():
    tracer = Tracer()
    Engine(tracer=tracer)
    tracer.complete("read", "io", 0.0, end=2.0)
    tracer.complete("read", "io", 0.0, end=4.0)
    tracer.instant("noise", "io")
    rows = summarize(tracer)
    row = rows[("io", "read")]
    assert row["count"] == 2
    assert row["total_s"] == 6.0
    assert row["mean_s"] == 3.0
    assert row["max_s"] == 4.0
    text = render_summary(tracer)
    assert "read" in text and "noise" not in text


def test_summarize_collapses_instance_names():
    tracer = Tracer()
    Engine(tracer=tracer)
    tracer.complete("process:prefetch[1:0+8]", "sim", 0.0)
    tracer.complete("process:prefetch[1:8+8]", "sim", 0.0)
    tracer.complete("process:worker-3", "sim", 0.0)
    rows = summarize(tracer)
    assert rows[("sim", "process:prefetch[*]")]["count"] == 2
    assert rows[("sim", "process:worker-*")]["count"] == 1
    raw = summarize(tracer, collapse=False)
    assert rows != raw and len(raw) == 3

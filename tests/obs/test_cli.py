"""The ``python -m repro.obs`` CLI: report --format json and timeline."""

import json

import pytest

from repro.obs import (
    Telemetry,
    TelemetryConfig,
    Tracer,
    analysis_to_dict,
    analyze,
    render_timeline_report,
    write_jsonl,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.slo import AlertRule, SloSpec
from repro.sim import Engine, Tally


def _trace_file(tmp_path):
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        for _ in range(3):
            start = eng.now
            yield eng.timeout(0.002)
            tracer.complete("fs.read", "filesystem", start)
        tracer.instant("cache.evict", "io")
        tracer.counter("queue", "storage", 2)

    eng.process(proc(), name="worker")
    eng.run()
    path = tmp_path / "trace.jsonl"
    write_jsonl(str(path), tracer)
    return path, tracer


def _series_file(tmp_path, rules=()):
    hub = Telemetry(TelemetryConfig(interval=0.5, rules=tuple(rules)))
    eng = Engine()
    tally = Tally("lat")
    eng.metrics.register("disk.latency", tally, device="d0")
    sampler = hub.attach(eng, node="n0")

    def proc():
        for v in (0.001, 0.050, 0.002):
            tally.record(v)
            yield eng.timeout(0.5)

    eng.process(proc())
    eng.run()
    sampler.finish()
    path = tmp_path / "series.jsonl"
    hub.write(str(path))
    return path


# -- report --format json ----------------------------------------------------

def test_report_json_round_trips_the_full_analysis(tmp_path, capsys):
    path, tracer = _trace_file(tmp_path)
    assert obs_main(["report", str(path), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == analysis_to_dict(analyze(tracer))
    assert doc["schema"] == "repro.obs.analysis"
    assert doc["trace"]["spans"] >= 3  # 3 fs.read + engine process spans
    names = {row["name"] for row in doc["rollup"]}
    assert "fs.read" in names
    assert "cache.evict" in doc["instants"]


def test_report_json_is_deterministic_text(tmp_path, capsys):
    path, _ = _trace_file(tmp_path)
    outputs = []
    for _ in range(2):
        assert obs_main(["report", str(path), "--format", "json"]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_report_text_remains_the_default(tmp_path, capsys):
    path, _ = _trace_file(tmp_path)
    assert obs_main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "span rollup" in out
    with pytest.raises(json.JSONDecodeError):
        json.loads(out)


# -- argument validation -----------------------------------------------------

@pytest.mark.parametrize("top", ["0", "-3"])
def test_report_rejects_non_positive_top(tmp_path, capsys, top):
    path, _ = _trace_file(tmp_path)
    assert obs_main(["report", str(path), "--top", top]) == 2
    err = capsys.readouterr().err
    assert "error" in err and "--top" in err


@pytest.mark.parametrize("top", ["0", "-3"])
def test_timeline_rejects_non_positive_top(tmp_path, capsys, top):
    path = _series_file(tmp_path)
    assert obs_main(["timeline", str(path), "--top", top]) == 2
    assert "--top" in capsys.readouterr().err


def test_timeline_rejects_narrow_width(tmp_path, capsys):
    path = _series_file(tmp_path)
    assert obs_main(["timeline", str(path), "--width", "5"]) == 2
    assert "--width" in capsys.readouterr().err


def test_timeline_missing_file_exits_2(tmp_path, capsys):
    assert obs_main(["timeline", str(tmp_path / "nope.jsonl")]) == 2
    assert "error" in capsys.readouterr().err


# -- timeline rendering ------------------------------------------------------

def test_timeline_renders_series_and_sparklines(tmp_path, capsys):
    path = _series_file(tmp_path)
    assert obs_main(["timeline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "series (top" in out
    assert "disk.latency" in out
    assert "[disk]" in out
    assert "|" in out  # sparkline gutters
    assert "(no slo rules evaluated)" in out


def test_timeline_renders_slo_and_alert_sections(tmp_path, capsys):
    rules = (AlertRule(
        SloSpec("slow", "latency", "disk.latency",
                objective=0.010, stat="max")),)
    path = _series_file(tmp_path, rules=rules)
    assert obs_main(["timeline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "slo status" in out
    assert "FIRING" in out and "RESOLVED" in out
    assert "slow" in out


def test_render_timeline_report_top_limits_series_rows():
    records = [{"kind": "telemetry.header", "interval": 1.0,
                "start": 0.0}]
    for i in range(5):
        records.append({
            "kind": "sample", "metric": f"m{i}", "type": "counter",
            "window": 0, "t0": 0.0, "t1": 1.0,
            "stats": {"delta": i, "value": i}, "labels": {"layer": "other"},
        })
    out = render_timeline_report(records, top=2)
    assert "3 more series" in out

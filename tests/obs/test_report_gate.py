"""The trace report, baseline snapshots, and the regression gate."""

import copy
import json

import pytest

from repro.bench.report import ExperimentResult
from repro.errors import BenchmarkError
from repro.obs import Tracer, analyze, build_baseline, gate_compare, write_jsonl
from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    load_baseline,
    metric_direction,
    parse_threshold,
    render_gate_report,
    render_trace_report,
    result_metrics,
    write_baseline,
)


def _result():
    return ExperimentResult(
        exp_id="tabX",
        title="synthetic",
        columns=("op", "data_size_bytes", "measured_ms", "paper_ms", "speedup"),
        rows=[("read", 4096, 1.0, 0.9, 2.0),
              ("open", 4096, 3.0, 2.5, 4.0),
              ("close", 4096, 5.0, 4.8, 6.0)],
    )


# -- trace report -----------------------------------------------------------

def test_render_trace_report_sections(tmp_path):
    from repro.bench.experiments.tab5_tab6_webserver import run_tab6

    tracer = Tracer()
    run_tab6(tracer=tracer)
    report = render_trace_report(analyze(tracer))
    assert "span rollup" in report
    assert "critical path" in report
    assert "per-layer attribution" in report
    assert "counters / utilization" in report
    assert "directly-follows graph" in report
    for column in ("self_ms", "p50_ms", "p90_ms", "p99_ms"):
        assert column in report
    assert "http.get" in report


def test_report_cli_on_bench_trace(tmp_path, capsys):
    from repro.bench.experiments.tables_traces import run_tab2

    tracer = Tracer()
    run_tab2(tracer=tracer)
    trace = tmp_path / "t.jsonl"
    write_jsonl(str(trace), tracer)
    assert obs_main(["report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out and "fs.read" in out


def test_report_cli_missing_file_exits_2(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
    assert "error" in capsys.readouterr().err


# -- baseline snapshots ------------------------------------------------------

def test_result_metrics_selects_and_characterizes_columns():
    metrics = result_metrics(_result())
    # Key column, paper_* and size columns are excluded.
    assert set(metrics) == {"measured_ms", "speedup"}
    m = metrics["measured_ms"]
    assert m["count"] == 3
    assert m["mean"] == pytest.approx(3.0)
    assert m["min"] == 1.0 and m["max"] == 5.0
    assert m["p50"] <= m["p90"] <= m["p99"] <= 5.0
    assert m["direction"] == "lower_is_better"
    assert metrics["speedup"]["direction"] == "higher_is_better"


def test_metric_direction_heuristics():
    assert metric_direction("read_ms") == "lower_is_better"
    assert metric_direction("cold_misses") == "lower_is_better"
    assert metric_direction("speedup") == "higher_is_better"
    assert metric_direction("hit_ratio") == "higher_is_better"


def test_write_and_load_baseline_roundtrip(tmp_path):
    path = tmp_path / "BENCH_x.json"
    doc = write_baseline(str(path), [_result()], label="unit")
    loaded = load_baseline(str(path))
    assert loaded == doc
    assert loaded["schema"] == "repro.bench.baseline"
    assert loaded["version"] == 1
    assert "tabX" in loaded["experiments"]


def test_load_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"schema\": \"something-else\"}")
    with pytest.raises(BenchmarkError):
        load_baseline(str(bad))
    missing = tmp_path / "missing.json"
    with pytest.raises(BenchmarkError):
        load_baseline(str(missing))


def test_bench_cli_baseline_out(tmp_path, capsys):
    from repro.bench.__main__ import main as bench_main

    path = tmp_path / "BENCH_now.json"
    assert bench_main(["tab1", "--baseline-out", str(path)]) == 0
    doc = load_baseline(str(path))
    assert set(doc["experiments"]) == {"tab1"}
    assert "measured_ms" in doc["experiments"]["tab1"]["metrics"]


# -- regression gate ---------------------------------------------------------

def _baseline():
    return build_baseline([_result()], label="a")


def test_gate_identical_baselines_pass():
    findings = gate_compare(_baseline(), _baseline(), threshold=0.10)
    assert findings and not any(f.regression for f in findings)


def test_gate_flags_synthetic_2x_slowdown():
    slow = copy.deepcopy(_baseline())
    metric = slow["experiments"]["tabX"]["metrics"]["measured_ms"]
    for stat in ("mean", "min", "max", "p50", "p90", "p99"):
        metric[stat] *= 2.0
    findings = gate_compare(_baseline(), slow, threshold=0.10)
    bad = [f for f in findings if f.regression]
    assert {(f.metric, f.stat) for f in bad} == {
        ("measured_ms", "mean"), ("measured_ms", "p99"),
    }
    assert all(f.delta_rel == pytest.approx(1.0) for f in bad)


def test_gate_direction_awareness():
    # A 2x *speedup drop* regresses; a 2x speedup gain does not.
    worse = copy.deepcopy(_baseline())
    worse["experiments"]["tabX"]["metrics"]["speedup"]["mean"] /= 2.0
    assert any(f.regression for f in gate_compare(_baseline(), worse))
    better = copy.deepcopy(_baseline())
    better["experiments"]["tabX"]["metrics"]["speedup"]["mean"] *= 2.0
    findings = gate_compare(_baseline(), better)
    assert not any(f.regression for f in findings)
    # A latency *improvement* is not a regression either.
    faster = copy.deepcopy(_baseline())
    faster["experiments"]["tabX"]["metrics"]["measured_ms"]["mean"] /= 2.0
    assert not any(f.regression for f in gate_compare(_baseline(), faster))


def test_gate_missing_experiment_is_structural_regression():
    empty = build_baseline([])
    findings = gate_compare(_baseline(), empty)
    assert any(f.regression and f.stat == "<presence>" for f in findings)
    # New experiments in the candidate are not failures.
    assert not any(f.regression for f in gate_compare(empty, _baseline()))


def test_gate_report_and_threshold_parsing():
    findings = gate_compare(_baseline(), _baseline(), threshold=0.10)
    text = render_gate_report(findings, 0.10)
    assert "0 regression(s)" in text
    assert parse_threshold("10%") == pytest.approx(0.10)
    assert parse_threshold("0.25") == pytest.approx(0.25)
    with pytest.raises(BenchmarkError):
        parse_threshold("lots")
    with pytest.raises(BenchmarkError):
        gate_compare(_baseline(), _baseline(), threshold=-1)


def test_gate_cli_exit_codes(tmp_path, capsys):
    base = tmp_path / "a.json"
    write_baseline(str(base), [_result()])
    same = tmp_path / "b.json"
    write_baseline(str(same), [_result()])
    assert obs_main(["gate", "--baseline", str(base),
                     "--candidate", str(same)]) == 0

    slow_doc = json.loads(base.read_text())
    for metric in slow_doc["experiments"]["tabX"]["metrics"].values():
        if metric["direction"] == "lower_is_better":
            for stat in ("mean", "min", "max", "p50", "p90", "p99"):
                metric[stat] *= 2.0
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(slow_doc))
    assert obs_main(["gate", "--baseline", str(base),
                     "--candidate", str(slow), "--threshold", "10%"]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    assert obs_main(["gate", "--baseline", str(tmp_path / "none.json"),
                     "--candidate", str(base)]) == 2


def test_committed_seed_baseline_is_valid_and_current_tree_passes_gate():
    """BENCH_seed.json loads, and a freshly measured subset matches it
    within the gate threshold (the CI contract, in-process)."""
    from pathlib import Path

    from repro.bench.experiments.tables_traces import run_tab1

    seed_path = Path(__file__).resolve().parents[2] / "BENCH_seed.json"
    seed = load_baseline(str(seed_path))
    assert "tab1" in seed["experiments"]
    fresh = build_baseline([run_tab1()])
    subset = {
        "schema": seed["schema"], "version": seed["version"], "label": "",
        "experiments": {"tab1": seed["experiments"]["tab1"]},
    }
    findings = gate_compare(subset, fresh, threshold=0.10)
    assert findings and not any(f.regression for f in findings)


# -- wall-clock section ------------------------------------------------------

def _wall_baseline(seconds):
    return build_baseline([_result()], label="a",
                          wall_seconds={"tabX": seconds})


def test_baseline_records_wall_clock_section():
    doc = _wall_baseline(1.2345678)
    assert doc["wall_clock"] == {"tabX": 1.235}
    # Informational only: never inside the gated experiments table.
    assert "wall_clock" not in doc["experiments"]


def test_baseline_omits_empty_wall_clock():
    assert "wall_clock" not in build_baseline([_result()])


def test_gate_ignores_wall_clock_by_default():
    findings = gate_compare(_wall_baseline(1.0), _wall_baseline(100.0),
                            threshold=0.10)
    assert not any(f.regression for f in findings)
    assert not any(f.stat == "wall" for f in findings)


def test_gate_wall_threshold_opt_in():
    findings = gate_compare(_wall_baseline(1.0), _wall_baseline(2.0),
                            threshold=0.10, wall_threshold=0.5)
    wall = [f for f in findings if f.stat == "wall"]
    assert len(wall) == 1 and wall[0].regression
    assert wall[0].metric == "wall_seconds"
    ok = gate_compare(_wall_baseline(1.0), _wall_baseline(1.2),
                      threshold=0.10, wall_threshold=0.5)
    assert not any(f.regression for f in ok if f.stat == "wall")


def test_gate_wall_missing_candidate_not_structural():
    with_wall = _wall_baseline(1.0)
    without = build_baseline([_result()], label="a")
    findings = gate_compare(with_wall, without,
                            threshold=0.10, wall_threshold=0.5)
    assert not any(f.regression for f in findings)


def test_gate_cli_wall_threshold(tmp_path, capsys):
    fast = tmp_path / "fast.json"
    slow = tmp_path / "slow.json"
    fast.write_text(json.dumps(_wall_baseline(1.0)))
    slow.write_text(json.dumps(_wall_baseline(10.0)))
    assert obs_main(["gate", "--baseline", str(fast),
                     "--candidate", str(slow)]) == 0
    assert obs_main(["gate", "--baseline", str(fast),
                     "--candidate", str(slow),
                     "--wall-threshold", "50%"]) == 1

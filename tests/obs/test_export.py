"""Exporters: Chrome trace_event structure and JSONL round-trips."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import (
    Tracer,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Engine


def _recorded_tracer():
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        start = eng.now
        yield eng.timeout(0.002)
        tracer.complete("disk.read", "storage", start, lba=128)
        tracer.instant("cache.evict", "io", page=3)
        tracer.counter("queue", "storage", 2)

    eng.process(proc(), name="worker")
    eng.run()
    tracer.name_process("unit-test")
    return tracer


def test_chrome_trace_structure():
    doc = to_chrome_trace(_recorded_tracer())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    by_ph = {}
    for event in events:
        by_ph.setdefault(event["ph"], []).append(event)
    # Metadata names the process group.
    meta = by_ph["M"][0]
    assert meta["name"] == "process_name"
    assert meta["args"]["name"] == "unit-test"
    # Complete spans carry microsecond ts/dur.
    read = next(e for e in by_ph["X"] if e["name"] == "disk.read")
    assert read["cat"] == "storage"
    assert read["ts"] == pytest.approx(0.0)
    assert read["dur"] == pytest.approx(2000.0)  # 0.002 s → 2000 µs
    assert read["args"]["lba"] == 128
    # Instants are thread-scoped.
    evict = next(e for e in by_ph["i"] if e["name"] == "cache.evict")
    assert evict["s"] == "t"
    # Counters put the value under the series name.
    queue = next(e for e in by_ph["C"] if e["name"] == "queue")
    assert queue["args"] == {"queue": 2}


def test_chrome_trace_json_serializable_and_counted(tmp_path):
    tracer = _recorded_tracer()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(str(path), tracer)
    doc = json.loads(path.read_text())
    non_meta = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert n == len(non_meta)


def test_chrome_trace_merges_tracers_with_pid_offsets():
    first, second = _recorded_tracer(), _recorded_tracer()
    doc = to_chrome_trace([first, second])
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert len(pids) == 2  # no collision between the two tracers


def test_jsonl_round_trip(tmp_path):
    tracer = _recorded_tracer()
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(str(path), tracer)
    assert n == len(tracer.events)
    assert read_jsonl(str(path)) == tracer.events


def test_jsonl_lines_are_stable_golden_shape():
    tracer = _recorded_tracer()
    line = json.loads(to_jsonl(tracer)[0])
    assert set(line) == {"kind", "name", "cat", "start", "end", "id",
                         "parent", "pid", "tid", "attrs"}
    assert line["kind"] == "span"
    assert line["name"] == "disk.read"


def test_read_jsonl_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "span"\n')
    with pytest.raises(SimulationError, match="bad.jsonl:1"):
        read_jsonl(str(path))


def test_read_jsonl_skips_blank_lines(tmp_path):
    tracer = _recorded_tracer()
    path = tmp_path / "trace.jsonl"
    write_jsonl(str(path), tracer)
    path.write_text(path.read_text() + "\n\n")
    assert len(read_jsonl(str(path))) == len(tracer.events)


def test_chrome_trace_rejects_non_tracer():
    with pytest.raises(SimulationError):
        to_chrome_trace(["not a tracer"])


def test_jsonl_counter_samples_round_trip_exactly(tmp_path):
    """Counter fidelity contract for analysis: sample order, values,
    names/labels, and timestamps all survive a JSONL round trip."""
    tracer = Tracer()
    eng = Engine(tracer=tracer)

    def proc():
        for depth in (3, 1, 4, 1, 5):
            tracer.counter("disk.queue", "storage", depth)
            tracer.counter("cache.hit_ratio", "io", depth / 10.0)
            yield eng.timeout(0.125)

    eng.process(proc(), name="sampler")
    eng.run()
    path = tmp_path / "counters.jsonl"
    write_jsonl(str(path), tracer)
    reloaded = read_jsonl(str(path))
    original = [e for e in tracer.events if e.kind == "counter"]
    loaded = [e for e in reloaded if e.kind == "counter"]
    assert loaded == original
    assert [e.attrs["value"] for e in loaded if e.name == "disk.queue"] == \
        [3, 1, 4, 1, 5]
    assert [e.start for e in loaded if e.name == "cache.hit_ratio"] == \
        [i * 0.125 for i in range(5)]
    assert all(e.category in {"storage", "io"} for e in loaded)

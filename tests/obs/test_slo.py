"""SLO specs, alert hysteresis, and the window-fold evaluator."""

import pytest

from repro.errors import SimulationError
from repro.obs.slo import AlertRule, SloEvaluator, SloSpec


def _latency(objective=0.010, stat="p99", **kw):
    return SloSpec("lat", "latency", "disk.latency",
                   objective=objective, stat=stat, **kw)


def _availability(objective=0.99):
    return SloSpec("avail", "availability", "retry.retries",
                   objective=objective, total_metric="retry.attempts")


def _burn(objective=0.99, burn_threshold=1.0):
    return SloSpec("burn", "error_budget", "retry.retries",
                   objective=objective, total_metric="retry.attempts",
                   burn_threshold=burn_threshold)


# -- spec validation ---------------------------------------------------------

def test_spec_validation():
    with pytest.raises(SimulationError):
        SloSpec("", "latency", "m", objective=1.0)
    with pytest.raises(SimulationError):
        SloSpec("x", "throughput", "m", objective=1.0)  # unknown kind
    with pytest.raises(SimulationError):
        _latency(objective=0.0)
    with pytest.raises(SimulationError):
        SloSpec("x", "availability", "errs", objective=1.5,
                total_metric="total")  # fraction out of range
    with pytest.raises(SimulationError):
        SloSpec("x", "availability", "errs", objective=0.99)  # no total
    with pytest.raises(SimulationError):
        _burn(burn_threshold=0.0)


def test_alert_rule_validation():
    with pytest.raises(SimulationError):
        AlertRule(_latency(), for_windows=0)
    with pytest.raises(SimulationError):
        AlertRule(_latency(), clear_windows=0)
    with pytest.raises(SimulationError):
        SloEvaluator([AlertRule(_latency()), AlertRule(_latency())])


# -- window verdicts ---------------------------------------------------------

def test_latency_window_verdicts():
    spec = _latency(objective=0.010)
    ok = {"disk.latency": {"count": 3, "p99": 0.008}}
    breach = {"disk.latency": {"count": 3, "p99": 0.020}}
    assert spec.evaluate_window(ok) == ("ok", 0.008, 0.010)
    assert spec.evaluate_window(breach) == ("breach", 0.020, 0.010)
    # Missing metric, empty window, or missing stat → no data.
    assert spec.evaluate_window({})[0] == "no_data"
    assert spec.evaluate_window(
        {"disk.latency": {"count": 0, "p99": None}})[0] == "no_data"


def test_latency_uses_configured_stat():
    spec = _latency(objective=0.010, stat="max")
    window = {"disk.latency": {"count": 1, "p99": 0.002, "max": 0.050}}
    assert spec.evaluate_window(window) == ("breach", 0.050, 0.010)


def test_availability_window_verdicts():
    spec = _availability(objective=0.90)
    window = {"retry.retries": {"delta": 1},
              "retry.attempts": {"delta": 20}}
    status, value, threshold = spec.evaluate_window(window)
    assert (status, threshold) == ("ok", 0.90)
    assert value == pytest.approx(0.95)
    window["retry.retries"]["delta"] = 5
    status, value, _ = spec.evaluate_window(window)
    assert status == "breach"
    assert value == pytest.approx(0.75)
    # Zero attempts in the window is silence, not a breach.
    idle = {"retry.retries": {"delta": 0}, "retry.attempts": {"delta": 0}}
    assert spec.evaluate_window(idle)[0] == "no_data"


def test_error_budget_burn_rate():
    spec = _burn(objective=0.99, burn_threshold=2.0)
    # 1% errors against a 1% budget burns at exactly 1.0.
    window = {"retry.retries": {"delta": 1},
              "retry.attempts": {"delta": 100}}
    status, value, threshold = spec.evaluate_window(window)
    assert (status, threshold) == ("ok", 2.0)
    assert value == pytest.approx(1.0)
    # 4% errors burns at 4x: over the 2.0 threshold.
    window["retry.retries"]["delta"] = 4
    status, value, _ = spec.evaluate_window(window)
    assert status == "breach"
    assert value == pytest.approx(4.0)


def test_ratio_kinds_accept_tally_count_as_delta():
    spec = _availability(objective=0.90)
    window = {"retry.retries": {"count": 0},
              "retry.attempts": {"count": 10}}
    assert spec.evaluate_window(window)[0] == "ok"


def test_describe_shapes_by_kind():
    assert _latency().describe() == {
        "name": "lat", "kind": "latency", "metric": "disk.latency",
        "objective": 0.010, "stat": "p99"}
    assert _burn().describe()["burn_threshold"] == 1.0
    assert _availability().describe()["total_metric"] == "retry.attempts"


# -- evaluator state machine -------------------------------------------------

def _window(p99):
    if p99 is None:
        return {}
    return {"disk.latency": {"count": 1, "p99": p99}}


def _fold(rule, p99s):
    evaluator = SloEvaluator([rule])
    transitions = []
    for i, p99 in enumerate(p99s):
        for record in evaluator.evaluate(i, float(i), _window(p99)):
            transitions.append((record["state"], record["window"]))
    return evaluator, transitions


def test_for_windows_hysteresis_delays_firing():
    rule = AlertRule(_latency(objective=0.010), for_windows=3)
    # Two-window breach: never fires.
    _, transitions = _fold(rule, [0.02, 0.02, 0.001, 0.02, 0.02])
    assert transitions == []
    # Three consecutive breaches fire on the third.
    _, transitions = _fold(rule, [0.001, 0.02, 0.02, 0.02])
    assert transitions == [("firing", 3)]


def test_clear_windows_hysteresis_delays_resolution():
    rule = AlertRule(_latency(objective=0.010), clear_windows=2)
    _, transitions = _fold(
        rule, [0.02, 0.001, 0.02, 0.001, 0.001])
    # One ok window does not resolve; the second consecutive one does —
    # and the breach at w2 happens while still firing (no re-fire).
    assert transitions == [("firing", 0), ("resolved", 4)]


def test_no_data_windows_freeze_both_streaks():
    rule = AlertRule(_latency(objective=0.010), for_windows=2,
                     clear_windows=2)
    _, transitions = _fold(
        rule, [0.02, None, 0.02, 0.001, None, 0.001])
    # Silence neither breaks the breach streak nor counts as ok.
    assert transitions == [("firing", 2), ("resolved", 5)]


def test_summaries_roll_up_counts_and_worst():
    rule = AlertRule(_latency(objective=0.010))
    evaluator, _ = _fold(rule, [0.001, 0.05, 0.02, None, 0.001])
    (summary,) = evaluator.summaries()
    assert summary["kind"] == "slo"
    assert summary["windows"] == 5
    assert summary["breached"] == 2
    assert summary["no_data"] == 1
    assert summary["fired"] == summary["resolved"] == 1
    assert summary["worst"] == pytest.approx(0.05)
    assert summary["final_state"] == "ok"


def test_summary_reports_still_firing():
    rule = AlertRule(_latency(objective=0.010))
    evaluator, transitions = _fold(rule, [0.02, 0.02])
    assert transitions == [("firing", 0)]
    assert evaluator.summaries()[0]["final_state"] == "firing"


def test_availability_worst_tracks_the_minimum():
    rule = AlertRule(_availability(objective=0.90))
    evaluator = SloEvaluator([rule])
    for i, (errs, total) in enumerate([(1, 10), (5, 10), (0, 10)]):
        evaluator.evaluate(i, float(i), {
            "retry.retries": {"delta": errs},
            "retry.attempts": {"delta": total}})
    assert evaluator.summaries()[0]["worst"] == pytest.approx(0.5)

"""Tests for the trace replayer (through the CLI VM)."""

import pytest

from repro.errors import TraceError
from repro.traces import (
    IOOp,
    ReplayConfig,
    TraceHeader,
    TraceRecord,
    TraceReplayer,
    generate_cholesky,
    generate_dmine,
    generate_lu,
    generate_pgrep,
)
from repro.traces.generator._base import TraceBuilder
from repro.units import MiB


def small_config(**kw):
    kw.setdefault("file_size", 64 * MiB)
    return ReplayConfig(**kw)


@pytest.fixture(scope="module")
def dmine_warm_result():
    h, recs = generate_dmine(dataset_size=8 * MiB, passes=2)
    return TraceReplayer(small_config(warmup=True)).replay(h, recs, "dmine")


def test_replay_runs_through_the_vm(dmine_warm_result):
    res = dmine_warm_result
    assert res.jit_methods >= 1       # the Replay method was JIT-compiled
    assert res.instructions > 100     # the CIL dispatch loop really ran
    assert res.total_time > 0


def test_replay_counts_match_trace(dmine_warm_result):
    h, recs = generate_dmine(dataset_size=8 * MiB, passes=2)
    res = dmine_warm_result
    for op in IOOp:
        expected = sum(1 for r in recs if r.op is op)
        assert res.timings.count(op) == expected, op


def test_warm_replay_op_ordering(dmine_warm_result):
    """The paper's Table 1 ordering: seek < open < read < close."""
    t = dmine_warm_result.timings
    assert t.mean_ms(IOOp.SEEK) < t.mean_ms(IOOp.OPEN)
    assert t.mean_ms(IOOp.OPEN) < t.mean_ms(IOOp.READ)
    assert t.mean_ms(IOOp.READ) < t.mean_ms(IOOp.CLOSE)


def test_close_slower_than_open_in_every_app():
    """'for all trace files the time spent closing a file was longer
    than the time taken to open the file'."""
    cases = [
        ("dmine", generate_dmine(dataset_size=4 * MiB)),
        ("pgrep", generate_pgrep(file_size=4 * MiB)),
        ("lu", generate_lu(extra_panels=0)),
        ("cholesky", generate_cholesky()),
    ]
    for name, (h, recs) in cases:
        res = TraceReplayer(small_config(file_size=96 * MiB)).replay(h, recs, name)
        assert res.timings.mean_ms(IOOp.CLOSE) > res.timings.mean_ms(IOOp.OPEN), name


def test_warm_reads_are_cache_fast(dmine_warm_result):
    """After a warm-up pass over a cache-fitting dataset, reads are
    microsecond-scale (the paper's 0.0025 ms regime)."""
    assert dmine_warm_result.timings.mean_ms(IOOp.READ) < 0.01


def test_cold_reads_are_orders_of_magnitude_slower():
    h, recs = generate_dmine(dataset_size=8 * MiB, passes=1)
    cold = TraceReplayer(small_config(warmup=False)).replay(h, recs, "dmine")
    warm = TraceReplayer(small_config(warmup=True)).replay(h, recs, "dmine")
    assert cold.timings.mean_ms(IOOp.READ) > 20 * warm.timings.mean_ms(IOOp.READ)


def test_cholesky_bimodal_reads():
    """Table 4's signature: some reads hit buffers, some fault."""
    h, recs = generate_cholesky()
    res = TraceReplayer(small_config(warmup=False)).replay(h, recs, "cholesky")
    reads = [ms for _size, ms in res.rows_for(IOOp.READ)]
    fast = [ms for ms in reads if ms < 0.05]
    slow = [ms for ms in reads if ms >= 0.05]
    assert fast and slow, "expected a bimodal mixture"
    assert min(slow) > 50 * max(fast)


def test_lu_write_buffered_and_close_expensive():
    """LU writes land in the cache (cheap); close pays for the dirty
    file (Table 3's close 0.4566 ms vs open 0.0006 ms)."""
    h, recs = generate_lu()
    res = TraceReplayer(small_config(file_size=96 * MiB)).replay(h, recs, "lu")
    t = res.timings
    assert t.mean_ms(IOOp.WRITE) < 0.05
    assert t.mean_ms(IOOp.CLOSE) > 10 * t.mean_ms(IOOp.OPEN)


def test_seek_times_are_tiny_and_flat():
    """Table 3: seeks are in the 1e-4 ms range regardless of offset."""
    h, recs = generate_lu()
    res = TraceReplayer(small_config(file_size=96 * MiB)).replay(h, recs, "lu")
    rows = res.rows_for(IOOp.SEEK)
    assert all(ms < 0.001 for _off, ms in rows)


def test_multi_process_trace_replays():
    h, recs = generate_pgrep(file_size=2 * MiB, num_processes=3, read_size=65536)
    res = TraceReplayer(small_config()).replay(h, recs, "pgrep")
    assert res.timings.count(IOOp.OPEN) == 3
    assert res.timings.count(IOOp.CLOSE) == 3
    assert res.timings.count(IOOp.READ) == sum(1 for r in recs if r.op is IOOp.READ)


def test_io_without_open_rejected():
    b = TraceBuilder()
    b.read(offset=0, length=100)  # never opened
    h, recs = b.build()
    with pytest.raises(TraceError, match="without an open file"):
        TraceReplayer(small_config()).replay(h, recs)


def test_per_record_timings_align_with_records():
    h, recs = generate_cholesky()
    res = TraceReplayer(small_config()).replay(h, recs, "cholesky")
    assert len(res.per_record) == len(recs)
    for rt in res.per_record:
        assert rt.record == recs[rt.index]
        assert rt.seconds >= 0
        assert rt.ms == pytest.approx(rt.seconds * 1e3)


def test_rows_for_uses_length_for_reads_and_offset_for_seeks():
    h, recs = generate_lu(extra_panels=0)
    res = TraceReplayer(small_config(file_size=96 * MiB)).replay(h, recs, "lu")
    seek_rows = res.rows_for(IOOp.SEEK)
    assert seek_rows[0][0] == 66617088  # offset, not length
    read_rows = res.rows_for(IOOp.READ)
    assert all(size == 524288 for size, _ in read_rows)


def test_probe_categories_attach_instrumentation():
    h, recs = generate_cholesky()
    cfg = small_config(probe_categories=("disk", "cache"))
    res = TraceReplayer(cfg).replay(h, recs, "cholesky")
    assert res.probe is not None
    assert len(res.probe) > 0
    categories = {e.category for e in res.probe.entries}
    assert categories <= {"disk", "cache"}
    # A timeline can be rendered straight from the result.
    from repro.sim.timeline import render_timeline

    assert "timeline:" in render_timeline(res.probe, buckets=20)


def test_probe_off_by_default():
    h, recs = generate_cholesky()
    res = TraceReplayer(small_config()).replay(h, recs)
    assert res.probe is None


def test_prefetch_policy_config_applied():
    h, recs = generate_dmine(dataset_size=4 * MiB)
    none = TraceReplayer(small_config(prefetch_policy="none")).replay(h, recs)
    fixed = TraceReplayer(small_config(prefetch_policy="fixed", prefetch_window=16)).replay(h, recs)
    # Read-ahead must reduce cold misses on a sequential scan.
    assert fixed.cache_misses < none.cache_misses

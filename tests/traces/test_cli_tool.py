"""Tests for the ``python -m repro.traces`` command-line tool."""

import pytest

from repro.traces.__main__ import main


def test_generate_and_info(tmp_path, capsys):
    out = tmp_path / "dmine.umdt"
    assert main(["generate", "dmine", "-o", str(out)]) == 0
    assert out.exists()
    text = capsys.readouterr().out
    assert "wrote" in text

    assert main(["info", str(out)]) == 0
    text = capsys.readouterr().out
    assert "records" in text
    assert "read" in text
    assert "/data/sample.dat" in text


def test_generate_default_filename(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["generate", "cholesky"]) == 0
    assert (tmp_path / "cholesky.umdt").exists()


def test_replay_warm_and_cold(tmp_path, capsys):
    out = tmp_path / "chol.umdt"
    main(["generate", "cholesky", "-o", str(out)])
    capsys.readouterr()

    assert main(["replay", str(out)]) == 0
    warm = capsys.readouterr().out
    assert "replayed" in warm
    assert "JIT methods" in warm

    assert main(["replay", str(out), "--cold", "--policy", "adaptive"]) == 0
    cold = capsys.readouterr().out
    assert "replayed" in cold


def test_unknown_application_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "not-an-app"])

"""Tests for the trace file format: structures, pack/unpack, files."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError, TraceFormatError
from repro.traces import (
    IOOp,
    TraceHeader,
    TraceRecord,
    read_trace,
    iter_trace,
    write_trace,
)
from repro.traces.format import (
    RECORD_STRUCT,
    TRACE_MAGIC,
    pack_header,
    pack_record,
    unpack_header,
    unpack_record,
)


def header(n=0):
    return TraceHeader(
        num_processes=2,
        num_files=1,
        num_records=n,
        records_offset=0,
        sample_file="/data/sample.dat",
    )


def record(**kw):
    defaults = dict(op=IOOp.READ, offset=4096, length=131072, pid=1,
                    wall_clock=1.5, process_clock=1.2)
    defaults.update(kw)
    return TraceRecord(**defaults)


def test_op_codes_match_paper():
    """'(Open =0, Close=1, Read=2, Write=3, Seek=4)'"""
    assert IOOp.OPEN == 0
    assert IOOp.CLOSE == 1
    assert IOOp.READ == 2
    assert IOOp.WRITE == 3
    assert IOOp.SEEK == 4


def test_header_validation():
    with pytest.raises(TraceError):
        TraceHeader(0, 1, 0, 0, "/f")
    with pytest.raises(TraceError):
        TraceHeader(1, 0, 0, 0, "/f")
    with pytest.raises(TraceError):
        TraceHeader(1, 1, -1, 0, "/f")
    with pytest.raises(TraceError):
        TraceHeader(1, 1, 0, 0, "")


def test_record_validation():
    with pytest.raises(TraceError):
        record(num_records=0)
    with pytest.raises(TraceError):
        record(offset=-1)
    with pytest.raises(TraceError):
        record(length=-1)
    with pytest.raises(TraceError):
        record(wall_clock=-1.0)


def test_record_coerces_int_op():
    r = TraceRecord(op=3)  # type: ignore[arg-type]
    assert r.op is IOOp.WRITE


def test_record_roundtrip():
    r = record()
    assert unpack_record(pack_record(r)) == r


def test_record_bad_op_code_rejected():
    data = bytearray(pack_record(record()))
    data[0] = 99
    with pytest.raises(TraceFormatError, match="invalid op"):
        unpack_record(bytes(data))


def test_record_truncation_rejected():
    with pytest.raises(TraceFormatError, match="truncated"):
        unpack_record(pack_record(record())[:-1])


def test_header_roundtrip():
    h = TraceHeader(4, 2, 100, 64, "/data/big.bin")
    parsed = unpack_header(pack_header(h))
    assert parsed == h


def test_header_bad_magic():
    data = bytearray(pack_header(header()))
    data[0:4] = b"NOPE"
    with pytest.raises(TraceFormatError, match="magic"):
        unpack_header(bytes(data))


def test_header_truncated():
    with pytest.raises(TraceFormatError):
        unpack_header(b"UM")


def test_write_read_file_roundtrip(tmp_path):
    records = [record(offset=i * 100, length=10 + i) for i in range(25)]
    path = tmp_path / "trace.umdt"
    written = write_trace(path, header(), records)
    assert written.num_records == 25
    h, recs = read_trace(path)
    assert h == written
    assert recs == records


def test_write_to_filelike_and_iter():
    records = [record(op=IOOp.SEEK, offset=i) for i in range(5)]
    buf = io.BytesIO()
    write_trace(buf, header(), records)
    assert list(iter_trace(buf.getvalue())) == records


def test_write_header_count_mismatch_rejected():
    with pytest.raises(TraceError, match="header says"):
        write_trace(io.BytesIO(), header(n=3), [record()])


def test_read_truncated_records_section():
    buf = io.BytesIO()
    write_trace(buf, header(), [record(), record()])
    data = buf.getvalue()[:-RECORD_STRUCT.size]
    with pytest.raises(TraceFormatError, match="short"):
        read_trace(data)


op_strategy = st.sampled_from(list(IOOp))


@given(
    st.lists(
        st.builds(
            TraceRecord,
            op=op_strategy,
            num_records=st.integers(min_value=1, max_value=1000),
            pid=st.integers(min_value=0, max_value=2**32 - 1),
            field=st.integers(min_value=0, max_value=2**32 - 1),
            wall_clock=st.floats(min_value=0, max_value=1e9),
            process_clock=st.floats(min_value=0, max_value=1e9),
            offset=st.integers(min_value=0, max_value=2**63 - 1),
            length=st.integers(min_value=0, max_value=2**63 - 1),
        ),
        max_size=40,
    )
)
def test_roundtrip_property(records):
    """Property: write → read is the identity on any valid record list."""
    buf = io.BytesIO()
    write_trace(
        buf,
        TraceHeader(1, 1, 0, 0, "/s"),
        records,
    )
    h, recs = read_trace(buf.getvalue())
    assert h.num_records == len(records)
    assert recs == records

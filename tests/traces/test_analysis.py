"""Tests for trace characterization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.traces import IOOp, TraceRecord, summarize
from repro.traces.analysis import _merge_intervals
from repro.traces import generate_dmine, generate_pgrep, generate_titan


def rec(op, offset=0, length=0, pid=0):
    return TraceRecord(op=op, offset=offset, length=length, pid=pid)


def test_empty_rejected():
    with pytest.raises(TraceError):
        summarize([])


def test_basic_counts():
    records = [
        rec(IOOp.OPEN),
        rec(IOOp.READ, 0, 100),
        rec(IOOp.READ, 100, 100),
        rec(IOOp.WRITE, 500, 50),
        rec(IOOp.SEEK, 900),
        rec(IOOp.CLOSE),
    ]
    s = summarize(records)
    assert s.record_count == 6
    assert s.op_counts[IOOp.READ] == 2
    assert s.bytes_read == 200
    assert s.bytes_written == 50
    assert s.min_request == 50
    assert s.max_request == 100
    assert s.processes == 1


def test_sequentiality_detection():
    records = [
        rec(IOOp.READ, 0, 100),     # no predecessor
        rec(IOOp.READ, 100, 100),   # sequential
        rec(IOOp.READ, 500, 100),   # jump
        rec(IOOp.READ, 600, 100),   # sequential
    ]
    s = summarize(records)
    assert s.sequential_reads == 2
    assert s.sequentiality == pytest.approx(0.5)


def test_sequentiality_tracked_per_process():
    records = [
        rec(IOOp.READ, 0, 100, pid=0),
        rec(IOOp.READ, 1000, 100, pid=1),
        rec(IOOp.READ, 100, 100, pid=0),    # sequential for pid 0
        rec(IOOp.READ, 1100, 100, pid=1),   # sequential for pid 1
    ]
    s = summarize(records)
    assert s.sequential_reads == 2
    assert s.processes == 2


def test_reuse_factor():
    records = [rec(IOOp.READ, 0, 1000), rec(IOOp.READ, 0, 1000)]
    s = summarize(records)
    assert s.unique_bytes == 1000
    assert s.reuse_factor == pytest.approx(2.0)


def test_merge_intervals():
    assert _merge_intervals([]) == 0
    assert _merge_intervals([(0, 10)]) == 10
    assert _merge_intervals([(0, 10), (5, 15)]) == 15
    assert _merge_intervals([(0, 10), (20, 30)]) == 20
    assert _merge_intervals([(20, 30), (0, 10), (9, 21)]) == 30


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=1, max_value=100),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_merge_intervals_matches_set_semantics(pairs):
    intervals = [(start, start + length) for start, length in pairs]
    expected = len(set().union(*(range(a, b) for a, b in intervals)))
    assert _merge_intervals(list(intervals)) == expected


def test_generated_traces_have_expected_character():
    _, dmine = generate_dmine(dataset_size=4 * 1024 * 1024, passes=2)
    s = summarize(dmine)
    assert s.sequentiality > 0.9          # sequential scan
    assert s.reuse_factor == pytest.approx(2.0, rel=0.05)  # two passes

    _, pgrep = generate_pgrep(file_size=4 * 1024 * 1024, num_processes=4)
    s = summarize(pgrep)
    assert s.processes == 4
    assert s.sequentiality > 0.9          # per-process sequential
    assert s.reuse_factor == pytest.approx(1.0, rel=0.01)  # single pass

    _, titan = generate_titan(num_queries=6, reads_per_query=8)
    s = summarize(titan)
    assert 0.3 < s.sequentiality < 1.0    # runs within queries, jumps between

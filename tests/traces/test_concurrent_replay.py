"""Tests for concurrent (per-process) trace replay."""

import pytest

from repro.traces import (
    IOOp,
    ReplayConfig,
    TraceReplayer,
    generate_pgrep,
    generate_dmine,
)
from repro.units import MiB


def pgrep_trace():
    return generate_pgrep(file_size=8 * MiB, num_processes=4, read_size=65536)


def cfg(**kw):
    kw.setdefault("file_size", 64 * MiB)
    return ReplayConfig(**kw)


def test_concurrent_replay_uses_one_stream_per_pid():
    header, records = pgrep_trace()
    result = TraceReplayer(cfg(concurrent=True)).replay(header, records, "pgrep")
    assert result.streams == 4
    sequential = TraceReplayer(cfg(concurrent=False)).replay(header, records, "pgrep")
    assert sequential.streams == 1


def test_concurrent_replay_covers_every_record():
    header, records = pgrep_trace()
    result = TraceReplayer(cfg(concurrent=True)).replay(header, records, "pgrep")
    assert len(result.per_record) == len(records)
    # Results are aligned with the original trace order.
    assert [rt.index for rt in result.per_record] == list(range(len(records)))
    for rt in result.per_record:
        assert rt.record == records[rt.index]
    for op in IOOp:
        expected = sum(1 for r in records if r.op is op)
        assert result.timings.count(op) == expected, op


def test_concurrent_replay_overlaps_io():
    """Four workers on cold data should finish well before 4x a single
    worker's pace (their reads contend but overlap on pacing gaps and
    independent cache lines)."""
    header, records = pgrep_trace()
    seq = TraceReplayer(cfg(warmup=False)).replay(header, records, "pgrep")
    con = TraceReplayer(cfg(warmup=False, concurrent=True)).replay(
        header, records, "pgrep"
    )
    # Same work, overlapping execution → concurrent replay is faster.
    assert con.total_time < seq.total_time


def test_concurrent_replay_deterministic():
    header, records = pgrep_trace()
    a = TraceReplayer(cfg(concurrent=True)).replay(header, records)
    b = TraceReplayer(cfg(concurrent=True)).replay(header, records)
    assert [t.seconds for t in a.per_record] == [t.seconds for t in b.per_record]
    assert a.total_time == b.total_time


def test_concurrent_single_process_trace_equals_one_stream():
    header, records = generate_dmine(dataset_size=2 * MiB, passes=1)
    result = TraceReplayer(cfg(concurrent=True)).replay(header, records)
    assert result.streams == 1


def test_concurrent_replay_runs_managed_threads():
    header, records = pgrep_trace()
    result = TraceReplayer(cfg(concurrent=True, warmup=True)).replay(header, records)
    # The replay method is compiled once and shared by all threads.
    assert result.jit_methods == 1
    assert result.instructions > 0

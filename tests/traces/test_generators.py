"""Tests for the five application trace generators."""

import pytest

from repro.errors import TraceError
from repro.traces import (
    APPLICATIONS,
    IOOp,
    generate_cholesky,
    generate_dmine,
    generate_lu,
    generate_pgrep,
    generate_titan,
    generate_trace,
)
from repro.traces.generator.cholesky import CHOLESKY_REQUEST_SIZES
from repro.traces.generator.dmine import DMINE_READ_SIZE
from repro.traces.generator.lu import LU_SEEK_OFFSETS
from repro.traces.generator.titan import TITAN_READ_SIZE


def ops_of(records):
    return [r.op for r in records]


def test_registry_dispatch():
    assert set(APPLICATIONS) == {"dmine", "pgrep", "lu", "titan", "cholesky"}
    h, recs = generate_trace("dmine")
    assert recs
    with pytest.raises(TraceError):
        generate_trace("fortnite")


def test_every_trace_opens_before_io_and_closes():
    for name in APPLICATIONS:
        _, recs = generate_trace(name)
        per_pid_open = {}
        for r in recs:
            if r.op is IOOp.OPEN:
                per_pid_open[r.pid] = True
            elif r.op is IOOp.CLOSE:
                per_pid_open[r.pid] = False
            else:
                assert per_pid_open.get(r.pid), f"{name}: {r.op} before open (pid {r.pid})"
        assert all(not v for v in per_pid_open.values()), f"{name}: file left open"


def test_wall_clock_monotone():
    for name in APPLICATIONS:
        _, recs = generate_trace(name)
        clocks = [r.wall_clock for r in recs]
        assert clocks == sorted(clocks), name


def test_dmine_structure():
    h, recs = generate_dmine(dataset_size=1024 * 1024, passes=2)
    reads = [r for r in recs if r.op is IOOp.READ]
    assert all(r.length == DMINE_READ_SIZE for r in reads)
    assert len(reads) == 2 * (1024 * 1024 // DMINE_READ_SIZE)
    # Sequential within each pass.
    per_pass = len(reads) // 2
    offsets = [r.offset for r in reads[:per_pass]]
    assert offsets == sorted(offsets)
    assert recs[0].op is IOOp.OPEN and recs[-1].op is IOOp.CLOSE


def test_dmine_validation():
    with pytest.raises(TraceError):
        generate_dmine(dataset_size=100)
    with pytest.raises(TraceError):
        generate_dmine(passes=0)


def test_pgrep_partitions_disjoint():
    h, recs = generate_pgrep(file_size=4 * 1024 * 1024, num_processes=4, read_size=65536)
    assert h.num_processes == 4
    reads = [r for r in recs if r.op is IOOp.READ]
    partition = 4 * 1024 * 1024 // 4
    for r in reads:
        assert r.pid * partition <= r.offset < (r.pid + 1) * partition


def test_pgrep_validation():
    with pytest.raises(TraceError):
        generate_pgrep(num_processes=0)
    with pytest.raises(TraceError):
        generate_pgrep(file_size=10, read_size=65536)


def test_lu_uses_published_offsets():
    _, recs = generate_lu()
    seeks = [r.offset for r in recs if r.op is IOOp.SEEK]
    # Each panel is sought twice (read then write-back); the first six
    # panels are the published Table 3 targets.
    assert seeks[0:12:2] == list(LU_SEEK_OFFSETS)
    writes = [r for r in recs if r.op is IOOp.WRITE]
    assert writes, "LU must write panels back"


def test_lu_validation():
    with pytest.raises(TraceError):
        generate_lu(panel_bytes=0)
    with pytest.raises(TraceError):
        generate_lu(extra_panels=-1)


def test_titan_read_size_and_reproducibility():
    _, a = generate_titan(seed=5)
    _, b = generate_titan(seed=5)
    assert [r.offset for r in a] == [r.offset for r in b]
    reads = [r for r in a if r.op is IOOp.READ]
    assert all(r.length == TITAN_READ_SIZE for r in reads)
    _, c = generate_titan(seed=6)
    assert [r.offset for r in a] != [r.offset for r in c]


def test_titan_validation():
    with pytest.raises(TraceError):
        generate_titan(region_size=1000)
    with pytest.raises(TraceError):
        generate_titan(num_queries=0)


def test_cholesky_uses_published_sizes():
    _, recs = generate_cholesky()
    reads = [r.length for r in recs if r.op is IOOp.READ]
    assert reads == list(CHOLESKY_REQUEST_SIZES)


def test_cholesky_each_read_preceded_by_seek_to_same_offset():
    _, recs = generate_cholesky()
    for i, r in enumerate(recs):
        if r.op is IOOp.READ:
            assert recs[i - 1].op is IOOp.SEEK
            assert recs[i - 1].offset == r.offset


def test_cholesky_rounds_extend_trace():
    _, one = generate_cholesky(rounds=1)
    _, two = generate_cholesky(rounds=2)
    n_reads = lambda rs: sum(1 for r in rs if r.op is IOOp.READ)
    assert n_reads(two) == 2 * n_reads(one)


def test_cholesky_validation():
    with pytest.raises(TraceError):
        generate_cholesky(sizes=[])
    with pytest.raises(TraceError):
        generate_cholesky(rounds=0)
    with pytest.raises(TraceError):
        generate_cholesky(compute_gap=0)

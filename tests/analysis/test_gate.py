"""The analysis-backed JIT eligibility gate.

Contract: the syntactic gate's accepted set is a strict subset of the
analysis gate's — analysis additionally admits methods whose only
unsupported instructions are dead code the template compiler skips.
"""

import pytest

from repro.analysis.targets import BUNDLED, bundled_assembly
from repro.cli import CliRuntime
from repro.cli.cil import Instruction, Op
from repro.cli.jit import JitCompiler
from repro.cli.jitcompile import native_eligible
from repro.cli.metadata import MethodDef
from repro.cli.verifier import verify_method
from repro.errors import JitError
from repro.sim import Engine


def dead_junk_method():
    """Unknown conv kind, malformed call and non-str ldstr — all
    unreachable behind an unconditional branch."""
    m = MethodDef("DeadJunk", [
        Instruction(Op.LDC, 7),            # 0
        Instruction(Op.BR, 6),             # 1 -> ret
        Instruction(Op.CONV, "i2"),        # 2 unreachable
        Instruction(Op.CALL, "garbage"),   # 3 unreachable
        Instruction(Op.LDSTR, 123),        # 4 unreachable
        Instruction(Op.POP),               # 5 unreachable
        Instruction(Op.RET),               # 6
    ], returns=True)
    verify_method(m)
    return m


def every_bundled_method():
    for name in sorted(BUNDLED):
        asm = bundled_assembly(name)
        for tname in sorted(asm.types):
            for mname in sorted(asm.types[tname].methods):
                yield asm.types[tname].methods[mname]


def test_differential_syntactic_subset_of_analysis():
    for method in every_bundled_method():
        if native_eligible(method):
            assert native_eligible(method, gate="analysis"), method.full_name


def test_analysis_gate_is_strictly_more_permissive():
    m = dead_junk_method()
    assert not native_eligible(m)
    assert native_eligible(m, gate="analysis")


def test_reachable_junk_rejected_by_both_gates():
    m = MethodDef("LiveJunk", [
        Instruction(Op.LDC, 1),
        Instruction(Op.CONV, "i2"),  # reachable unknown conv kind
        Instruction(Op.RET),
    ], returns=True)
    verify_method(m)
    assert not native_eligible(m)
    assert not native_eligible(m, gate="analysis")


def test_unverified_method_rejected_by_both_gates():
    m = MethodDef("NoVerify", [Instruction(Op.RET)])
    assert m.max_stack is None
    assert not native_eligible(m)
    assert not native_eligible(m, gate="analysis")


def test_unknown_gate_name_raises():
    m = dead_junk_method()
    with pytest.raises(ValueError, match="unknown gate"):
        native_eligible(m, gate="psychic")


def test_analysis_gated_compile_runs_correctly():
    """A method only the analysis gate admits compiles and returns the
    same value the interpreter produces."""
    m = dead_junk_method()

    rt_native = CliRuntime(Engine())
    rt_native.jit.gate = "analysis"
    assert rt_native.jit.native_for(m, rt_native.interpreter.params) is not None
    native_result = rt_native.engine.run_process(rt_native.invoke(m))

    rt_interp = CliRuntime(Engine())
    rt_interp.jit.native_enabled = False
    interp_result = rt_interp.engine.run_process(rt_interp.invoke(m))

    assert native_result == interp_result == 7


def test_jitcompiler_gate_knob(monkeypatch):
    engine = Engine()
    assert JitCompiler(engine).gate == "syntactic"
    assert JitCompiler(Engine(), gate="analysis").gate == "analysis"
    monkeypatch.setenv("REPRO_JIT_GATE", "analysis")
    assert JitCompiler(Engine()).gate == "analysis"
    monkeypatch.setenv("REPRO_JIT_GATE", "bogus")
    with pytest.raises(JitError, match="unknown JIT gate"):
        JitCompiler(Engine())


def test_gate_is_part_of_native_cache_key():
    m = dead_junk_method()
    rt = CliRuntime(Engine())
    rt.jit.gate = "syntactic"
    assert rt.jit.native_for(m, rt.interpreter.params) is None
    rt.jit.gate = "analysis"
    assert rt.jit.native_for(m, rt.interpreter.params) is not None

"""The determinism lint: banned primitives, pragma, repo cleanliness."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import lint_determinism  # noqa: E402

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def findings_for(tmp_path, source):
    f = tmp_path / "mod.py"
    f.write_text(source)
    return lint_determinism.lint_file(f)


def test_repo_source_tree_is_clean():
    findings = lint_determinism.lint_paths([SRC])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_wall_clock_reads_flagged(tmp_path):
    found = findings_for(tmp_path, (
        "import time\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
        "c = time.monotonic_ns()\n"
    ))
    assert len(found) == 3
    assert all("wall-clock" in f.message for f in found)


def test_strftime_needs_explicit_time_tuple(tmp_path):
    found = findings_for(tmp_path, (
        "import time\n"
        "bad = time.strftime('%Y')\n"
        "ok = time.strftime('%Y', time.gmtime(0))\n"
    ))
    assert [f.line for f in found] == [2]


def test_datetime_now_flagged(tmp_path):
    found = findings_for(tmp_path, (
        "import datetime\n"
        "a = datetime.datetime.now()\n"
        "b = datetime.date.today()\n"
    ))
    assert len(found) == 2


def test_bare_random_and_entropy_sources_flagged(tmp_path):
    found = findings_for(tmp_path, (
        "import os, random, uuid\n"
        "a = random.random()\n"
        "b = random.randint(0, 9)\n"
        "c = os.urandom(8)\n"
        "d = uuid.uuid4()\n"
    ))
    assert len(found) == 4


def test_seeded_rng_instances_allowed(tmp_path):
    found = findings_for(tmp_path, (
        "import random\n"
        "rng = random.Random(42)\n"
        "a = rng.random()\n"
        "import numpy as np\n"
        "g = np.random.default_rng(7)\n"
    ))
    assert found == []


def test_pragma_allows_line(tmp_path):
    found = findings_for(tmp_path, (
        "import time\n"
        "t0 = time.perf_counter()  # det: allow - wall measurement\n"
        "t1 = time.perf_counter()\n"
    ))
    assert [f.line for f in found] == [3]


def test_id_keyed_dict_iteration_flagged(tmp_path):
    found = findings_for(tmp_path, (
        "table = {}\n"
        "def put(x):\n"
        "    table[id(x)] = x\n"
        "def walk():\n"
        "    for k, v in table.items():\n"
        "        print(k, v)\n"
    ))
    assert len(found) == 1
    assert "id()-keyed" in found[0].message
    assert found[0].line == 5


def test_sorted_iteration_over_id_keyed_dict_ok(tmp_path):
    found = findings_for(tmp_path, (
        "table = {}\n"
        "def put(x):\n"
        "    table[id(x)] = x\n"
        "def walk():\n"
        "    for k in sorted(table):\n"
        "        print(k)\n"
    ))
    assert found == []


def test_file_pragma_allows_whole_file(tmp_path):
    found = findings_for(tmp_path, (
        "# det: allow-file - wall-clock shim by design\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
    ))
    assert found == []


def test_json_format_emits_findings_list(tmp_path, capsys):
    import json

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert lint_determinism.main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["findings"]) == 1
    finding = payload["findings"][0]
    assert finding["line"] == 2
    assert "wall-clock" in finding["message"]
    assert finding["path"].endswith("dirty.py")

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_determinism.main([str(clean), "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == {"findings": []}


def test_cli_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_determinism.main([str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert lint_determinism.main([str(dirty)]) == 1
    assert lint_determinism.main([str(tmp_path / "missing.py")]) == 2

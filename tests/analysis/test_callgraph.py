"""Call-graph facts: edges, recursion, inline depth, unresolved."""

from repro.analysis.callgraph import build_callgraph
from repro.analysis.targets import bundled_assembly
from repro.cli.assembly import AssemblyBuilder, MethodBuilder


def chain_assembly():
    """c -> b -> a (depth 2 from c)."""
    a = MethodBuilder("A", returns=True).ldc(1).ret().build()
    b = MethodBuilder("B", returns=True).call(a).ret().build()
    c = MethodBuilder("C", returns=True).call(b).ret().build()
    ab = AssemblyBuilder("Chain")
    for m in (a, b, c):
        ab.add_method("T", m)
    return ab.build()


def test_edges_and_inline_depth():
    graph = build_callgraph(chain_assembly())
    assert graph.edges["T::C"] == ["T::B"]
    assert graph.edges["T::B"] == ["T::A"]
    assert graph.edges["T::A"] == []
    assert graph.inline_depth == {"T::A": 0, "T::B": 1, "T::C": 2}
    assert graph.max_inline_depth == 2
    assert graph.recursive == []


def test_mutual_recursion_detected():
    # Forward signatures let two methods call each other.
    ping = (
        MethodBuilder("Ping", returns=True)
        .arg("n")
        .ldarg("n").brfalse("base")
        .ldarg("n").ldc(1).sub().call(("T::Pong", 1, True)).ret()
        .label("base").ldc(0).ret()
        .build()
    )
    pong = (
        MethodBuilder("Pong", returns=True)
        .arg("n")
        .ldarg("n").call(("T::Ping", 1, True)).ret()
        .build()
    )
    ab = AssemblyBuilder("Mutual")
    ab.add_method("T", ping)
    ab.add_method("T", pong)
    graph = build_callgraph(ab.build())
    assert graph.recursive == ["T::Ping", "T::Pong"]
    notes = graph.diagnostics()
    assert sum(1 for d in notes if d.code == "recursive-call") == 2


def test_unresolved_forward_call():
    m = (
        MethodBuilder("Caller", returns=True)
        .ldc(3).call(("Elsewhere::Missing", 1, True)).ret()
        .build()
    )
    ab = AssemblyBuilder("Unresolved")
    ab.add_method("T", m)
    graph = build_callgraph(ab.build())
    assert graph.unresolved == [("T::Caller", "Elsewhere::Missing")]
    assert any(d.code == "unresolved-call" for d in graph.diagnostics())


def test_intrinsic_calls_counted_not_traversed():
    graph = build_callgraph(bundled_assembly("qcrd_cil"))
    assert graph.intrinsic_calls["Qcrd::RunProgram1"] == 2
    assert graph.intrinsic_calls["Qcrd::RunProgram2"] == 1
    assert graph.edges["Qcrd::Main"] == [
        "Qcrd::RunProgram1", "Qcrd::RunProgram2",
    ]
    assert graph.recursive == []


def test_to_dict_is_deterministic():
    asm = bundled_assembly("microbench")
    first = build_callgraph(asm).to_dict()
    second = build_callgraph(asm).to_dict()
    assert first == second
    assert "max_inline_depth" in first

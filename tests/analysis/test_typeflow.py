"""Abstract interpreter: lattice joins, constant facts, reachability."""

from repro.analysis.lattice import Init, Kind, TypeVal, type_of_constant
from repro.analysis.typeflow import analyze_types
from repro.cli.assembly import MethodBuilder
from repro.cli.cil import Instruction, Op
from repro.cli.metadata import MethodDef
from repro.cli.verifier import verify_method


def test_lattice_joins():
    i32 = type_of_constant(1)
    i64 = type_of_constant(1 << 40)
    f64 = type_of_constant(1.5)
    s = type_of_constant("x")
    assert i32.kind is Kind.INT32 and i64.kind is Kind.INT64
    assert i32.join(i64).kind is Kind.INT64          # numeric widening
    assert i32.join(f64).kind is Kind.FLOAT64
    assert i32.join(s).kind is Kind.TOP              # confusion
    assert i32.join(s).confused
    # Equal kinds with disagreeing constants keep the kind, drop the const.
    j = type_of_constant(1).join(type_of_constant(2))
    assert j.kind is Kind.INT32 and not j.known
    assert Init.UNINIT.join(Init.INIT) is Init.MAYBE


def test_constant_folding_through_arithmetic():
    m = (
        MethodBuilder("fold", returns=True)
        .ldc(6).ldc(7).mul().ret()
        .build()
    )
    facts = analyze_types(m)
    # Entry state of ret holds the folded constant 42.
    ret_state = facts.entry_states[3]
    assert ret_state.stack[0].const == 42
    assert ret_state.stack[0].kind is Kind.INT32


def test_const_branch_flows_both_edges():
    # brtrue on a constant: fact recorded, but both edges reachable
    # (alignment with the verifier and the template JIT).
    m = MethodDef("cb", [
        Instruction(Op.LDC, 1),
        Instruction(Op.BRTRUE, 4),
        Instruction(Op.LDC, 7),   # the never-taken fall-through
        Instruction(Op.POP),
        Instruction(Op.LDC, 0),
        Instruction(Op.RET),
    ], returns=True)
    verify_method(m)
    facts = analyze_types(m)
    assert (1, True) in facts.const_branches
    assert facts.entry_states[2] is not None, "fall-through must stay reachable"
    assert facts.entry_states[4] is not None


def test_uninit_local_read_recorded():
    m = MethodDef("uninit", [
        Instruction(Op.LDLOC, 0),
        Instruction(Op.RET),
    ], local_count=1, returns=True)
    verify_method(m)
    facts = analyze_types(m)
    assert [(pc, i) for pc, i, _state in facts.uninit_reads] == [(0, 0)]
    assert facts.uninit_reads[0][2] is Init.UNINIT


def test_unknown_conv_kind_is_type_error():
    m = MethodDef("badconv", [
        Instruction(Op.LDC, 1),
        Instruction(Op.CONV, "i2"),
        Instruction(Op.RET),
    ], returns=True)
    verify_method(m)
    facts = analyze_types(m)
    assert any("conv" in msg for _pc, msg in facts.type_errors)


def test_const_div_by_zero_warns():
    m = (
        MethodBuilder("dz", returns=True)
        .ldc(1).ldc(0).div().ret()
        .build()
    )
    facts = analyze_types(m)
    assert any("DivideByZero" in msg for _pc, msg in facts.type_warnings)
    assert not facts.type_errors


def test_handler_entry_state_is_exception_object():
    m = (
        MethodBuilder("guarded", returns=True)
        .local("x")
        .begin_try()
        .ldc(1).ldc(0).div().stloc("x")
        .end_try("handler")
        .ldloc("x").ret()
        .label("handler")
        .pop().ldc(-1).ret()
        .build()
    )
    facts = analyze_types(m)
    hpc = m.handlers[0].handler_start
    state = facts.entry_states[hpc]
    assert state is not None
    assert len(state.stack) == 1
    assert state.stack[0].kind is Kind.OBJECT


def test_join_confusion_recorded_on_mixed_types():
    m = (
        MethodBuilder("mix", returns=True)
        .arg("c").local("x")
        .ldarg("c").brtrue("s")
        .ldc(1).stloc("x").br("join")
        .label("s").ldstr("one").stloc("x")
        .label("join").ldloc("x").ret()
        .build()
    )
    facts = analyze_types(m)
    assert any("local[0]" in slot for _pc, slot, _k in facts.join_confusions)


def test_malformed_call_is_type_error_and_stops_path():
    m = MethodDef("badcall", [
        Instruction(Op.LDC, 1),
        Instruction(Op.CALL, "not-a-tuple"),
        Instruction(Op.RET),
    ], returns=True)
    m.max_stack = 1  # pretend-verified; the verifier would reject this
    facts = analyze_types(m)
    assert any("malformed" in msg for _pc, msg in facts.type_errors)
    assert facts.entry_states[2] is None  # depth unknowable past the call


def test_stack_kinds_matches_entry_states():
    m = (
        MethodBuilder("sk", returns=True)
        .ldc(2).ldc(3).add().ret()
        .build()
    )
    facts = analyze_types(m)
    kinds = facts.stack_kinds()
    assert len(kinds) == len(m.body)
    assert kinds[0] == ()
    assert kinds[2] == (Kind.INT32, Kind.INT32)
    assert kinds[3] == (Kind.INT32,)

"""CFG construction: blocks, edges, reachability, dominators."""

from repro.analysis.cfg import build_cfg
from repro.cli.assembly import MethodBuilder
from repro.cli.cil import Instruction, Op
from repro.cli.metadata import ExceptionHandler, MethodDef
from repro.cli.verifier import verify_method


def loop_method():
    return (
        MethodBuilder("loop", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("acc").ret()
        .build()
    )


def try_method():
    return (
        MethodBuilder("guarded", returns=True)
        .local("x")
        .begin_try()
        .ldc(1).ldc(0).div().stloc("x")
        .end_try("handler")
        .ldloc("x").ret()
        .label("handler")
        .pop().ldc(-1).ret()
        .build()
    )


def test_straight_line_is_one_block():
    m = (
        MethodBuilder("straight", returns=True)
        .ldc(1).ldc(2).add().ret()
        .build()
    )
    cfg = build_cfg(m)
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].pcs == range(0, 4)
    assert cfg.reachable == frozenset({0})


def test_loop_blocks_and_edges():
    cfg = build_cfg(loop_method())
    # Entry, loop head, loop body, exit.
    assert len(cfg.blocks) == 4
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    # Loop head branches to exit, falls to body; body branches back.
    head = cfg.block_at(4).index
    body = next(b for b in cfg.blocks if b.start > cfg.blocks[head].start
                and not b.is_handler_entry and b.index != len(cfg.blocks) - 1)
    assert kinds[(body.index, head)] == "branch"
    assert all(b.index in cfg.reachable for b in cfg.blocks)


def test_exception_edges_and_handler_flag():
    m = try_method()
    cfg = build_cfg(m)
    handler_pc = m.handlers[0].handler_start
    hblock = cfg.block_at(handler_pc)
    assert hblock.is_handler_entry
    exc_edges = [e for e in cfg.edges if e.kind == "exception"]
    assert exc_edges, "protected region must produce exception edges"
    assert all(e.dst == hblock.index for e in exc_edges)
    # Every block overlapping the try region has the edge.
    h = m.handlers[0]
    for b in cfg.blocks:
        overlaps = max(b.start, h.try_start) < min(b.end, h.try_end)
        has_edge = any(e.kind == "exception" for e in b.successors)
        assert overlaps == has_edge


def test_unreachable_block_detected():
    # 0: ldc 1; 1: br 4; 2: ldc 9; 3: pop; 4: ret
    m = MethodDef("dead", [
        Instruction(Op.LDC, 1),
        Instruction(Op.BR, 4),
        Instruction(Op.LDC, 9),
        Instruction(Op.POP),
        Instruction(Op.RET),
    ], returns=True)
    verify_method(m)
    cfg = build_cfg(m)
    dead = cfg.block_at(2)
    assert dead.index not in cfg.reachable
    assert 2 not in cfg.reachable_pcs() and 3 not in cfg.reachable_pcs()
    assert 4 in cfg.reachable_pcs()


def test_dominators_on_diamond():
    #      0 (cond)
    #     / \
    #    A   B
    #     \ /
    #      join/ret
    m = (
        MethodBuilder("diamond", returns=True)
        .arg("c").local("x")
        .ldarg("c").brtrue("a")
        .ldc(1).stloc("x").br("join")
        .label("a").ldc(2).stloc("x")
        .label("join").ldloc("x").ret()
        .build()
    )
    cfg = build_cfg(m)
    entry = cfg.block_at(0).index
    join = cfg.block_at(len(m.body) - 1).index
    a = cfg.block_at(m.body[1].operand).index
    assert cfg.dominates(entry, join)
    assert not cfg.dominates(a, join)  # the other arm bypasses it
    assert cfg.dominates(join, join)


def test_format_is_deterministic_and_flags():
    m = try_method()
    first = build_cfg(m).format()
    second = build_cfg(m).format()
    assert first == second
    assert "[handler]" in first
    assert "(exception)" in first
    assert first.startswith("cfg guarded:")

"""The diagnostic pass suite over whole methods."""

from repro.analysis.diagnostics import Diagnostic, Severity, render_json, render_text
from repro.analysis.passes import analyze_method
from repro.cli.assembly import MethodBuilder
from repro.cli.cil import Instruction, Op
from repro.cli.metadata import ExceptionHandler, MethodDef
from repro.cli.verifier import verify_method


def codes(ma):
    return [d.code for d in ma.diagnostics]


def by_code(ma, code):
    return [d for d in ma.diagnostics if d.code == code]


def test_clean_method_has_no_diagnostics():
    m = (
        MethodBuilder("clean", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("acc").ret()
        .build()
    )
    assert analyze_method(m).diagnostics == []


def test_unreachable_code_reported_as_run():
    m = MethodDef("dead", [
        Instruction(Op.LDC, 1),
        Instruction(Op.BR, 5),
        Instruction(Op.LDC, 9),
        Instruction(Op.POP),
        Instruction(Op.NOP),
        Instruction(Op.RET),
    ], returns=True)
    verify_method(m)
    found = by_code(analyze_method(m), "unreachable-code")
    assert len(found) == 1
    assert found[0].pc == 2
    assert "pc 2..4" in found[0].message
    assert found[0].severity is Severity.WARNING


def test_uninit_local_warning():
    m = MethodDef("uninit", [
        Instruction(Op.LDLOC, 0),
        Instruction(Op.RET),
    ], local_count=1, returns=True)
    verify_method(m)
    found = by_code(analyze_method(m), "uninit-local")
    assert len(found) == 1 and found[0].severity is Severity.WARNING


def test_dead_store_and_unused_local_notes():
    m = (
        MethodBuilder("ds", returns=True)
        .local("a").local("never")
        .ldc(5).stloc("a")       # dead: overwritten before any read
        .ldc(7).stloc("a")
        .ldloc("a").ret()
        .build()
    )
    ma = analyze_method(m)
    dead = by_code(ma, "dead-store")
    assert [d.pc for d in dead] == [1]
    unused = by_code(ma, "unused-local")
    assert len(unused) == 1 and "local 1" in unused[0].message


def test_store_live_across_exception_edge_is_not_dead():
    # The store inside the try is only read by the handler: the
    # exception edge must keep it alive.
    m = (
        MethodBuilder("keep", returns=True)
        .arg("d").local("x")
        .begin_try()
        .ldc(42).stloc("x")
        .ldc(1).ldarg("d").div().pop()
        .end_try("handler")
        .ldc(0).ret()
        .label("handler")
        .pop().ldloc("x").ret()
        .build()
    )
    assert by_code(analyze_method(m), "dead-store") == []


def test_unused_arg_note():
    m = (
        MethodBuilder("ua", returns=True)
        .arg("used").arg("ignored")
        .ldarg("used").ret()
        .build()
    )
    found = by_code(analyze_method(m), "unused-arg")
    assert len(found) == 1 and "'ignored'" in found[0].message


def test_const_branch_and_const_compare():
    m = (
        MethodBuilder("cb", returns=True)
        .ldc(2).ldc(1).cgt().brtrue("t")
        .ldc(0).ret()
        .label("t").ldc(1).ret()
        .build()
    )
    ma = analyze_method(m)
    branches = by_code(ma, "const-branch")
    assert len(branches) == 1 and "always taken" in branches[0].message
    compares = by_code(ma, "const-compare")
    assert len(compares) == 1 and compares[0].severity is Severity.NOTE


def test_type_error_is_error_severity():
    m = MethodDef("te", [
        Instruction(Op.LDC, 1),
        Instruction(Op.CONV, "bogus"),
        Instruction(Op.RET),
    ], returns=True)
    verify_method(m)
    errs = by_code(analyze_method(m), "type-error")
    assert len(errs) == 1 and errs[0].severity is Severity.ERROR


def test_fallthrough_into_handler_flagged():
    # Handler block is also reached by normal flow (fallthrough at the
    # same depth the verifier seeds handlers with: 1).
    m = MethodDef("fall", [
        Instruction(Op.LDC, 1),      # 0: try start
        Instruction(Op.POP),         # 1
        Instruction(Op.LDC, 1),      # 2: falls into handler at depth 1
        Instruction(Op.POP),         # 3: handler start
        Instruction(Op.LDC, 0),      # 4
        Instruction(Op.RET),         # 5
    ], returns=True, handlers=[
        ExceptionHandler(try_start=0, try_end=2, handler_start=3),
    ])
    verify_method(m)
    found = by_code(analyze_method(m), "fallthrough-into-handler")
    assert found and all(d.severity is Severity.WARNING for d in found)


def test_diagnostics_sorted_and_renderers_deterministic():
    m = MethodDef("multi", [
        Instruction(Op.LDLOC, 0),    # uninit read
        Instruction(Op.POP),
        Instruction(Op.LDC, 1),
        Instruction(Op.BR, 6),
        Instruction(Op.LDC, 9),      # unreachable
        Instruction(Op.POP),
        Instruction(Op.RET),
    ], local_count=1, returns=True)
    verify_method(m)
    ma = analyze_method(m, assembly="T")
    keys = [d.sort_key() for d in ma.diagnostics]
    assert keys == sorted(keys)
    assert all(d.assembly == "T" for d in ma.diagnostics)
    assert render_text(ma.diagnostics) == render_text(list(ma.diagnostics))
    assert render_json(ma.diagnostics) == render_json(list(ma.diagnostics))

"""The ``python -m repro.analysis`` CLI: targets, formats, exit codes."""

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.analysis.__main__ import main
from repro.analysis.targets import BUNDLED


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


def test_list_names_bundled_assemblies():
    code, out, _err = run_cli(["--list"])
    assert code == 0
    assert out.split() == sorted(BUNDLED)


def test_all_bundled_assemblies_are_error_free():
    code, out, _err = run_cli(["--all"])
    assert code == 0
    assert "0 error" in out


def test_cluster_corpus_shape_and_cleanliness():
    from repro.analysis.driver import analyze_assembly
    from repro.analysis.targets import bundled_assembly

    asm = bundled_assembly("cluster")
    methods = sorted(m for t in asm.types.values() for m in t.methods)
    assert methods == ["FailoverRead", "Main", "ReadWithFallback",
                       "ReplicateWrite"]
    analysis = analyze_assembly(asm)
    diags = [d for m in analysis.methods for d in m.diagnostics]
    assert diags == []


def test_json_output_is_byte_identical_across_runs():
    code1, out1, _ = run_cli(["--all", "--format", "json"])
    code2, out2, _ = run_cli(["--all", "--format", "json"])
    assert code1 == code2 == 0
    assert out1 == out2
    doc = json.loads(out1)
    assert doc["counts"]["error"] == 0
    assert len(doc["assemblies"]) == len(BUNDLED)
    # No interpreter-session artifacts: method tokens never serialize.
    assert "token" not in out1


def test_fail_on_threshold_flips_exit_code():
    # The typeflow module itself has no diagnosable CIL; use a module
    # target that exposes a method with notes: trace replay is clean,
    # so exercise --fail-on note on a bundled corpus (0 diagnostics →
    # still exit 0), then a synthetic module with a warning.
    code, _out, _err = run_cli(["--all", "--fail-on", "note"])
    assert code == 0  # bundled corpus is fully clean


def test_fail_on_warning_with_dirty_module(tmp_path, monkeypatch):
    dirty = tmp_path / "dirtymod.py"
    dirty.write_text(
        "from repro.cli.cil import Instruction, Op\n"
        "from repro.cli.metadata import MethodDef\n"
        "from repro.cli.verifier import verify_method\n"
        "def build_uninit():\n"
        "    m = MethodDef('Uninit', [\n"
        "        Instruction(Op.LDLOC, 0),\n"
        "        Instruction(Op.RET),\n"
        "    ], local_count=1, returns=True)\n"
        "    verify_method(m)\n"
        "    return m\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    code, out, _err = run_cli(["dirtymod:build_uninit", "--fail-on", "warning"])
    assert code == 1
    assert "uninit-local" in out
    # The same run passes at the error threshold.
    code2, _out2, _err2 = run_cli(["dirtymod:build_uninit"])
    assert code2 == 0


def test_unknown_target_exits_2():
    code, _out, err = run_cli(["no_such_module_xyz"])
    assert code == 2
    assert "error" in err


def test_bad_severity_exits_2():
    code, _out, err = run_cli(["--all", "--fail-on", "fatal"])
    assert code == 2
    assert "unknown severity" in err


def test_no_targets_exits_2():
    code, _out, err = run_cli([])
    assert code == 2
    assert "no targets" in err


def test_module_attr_target_resolves_methoddef():
    code, out, _err = run_cli(
        ["repro.traces.replay:build_replay_method", "--format", "json"]
    )
    assert code == 0
    doc = json.loads(out)
    assert doc["counts"]["error"] == 0

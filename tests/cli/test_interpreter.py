"""Tests for the CIL interpreter (execution engine)."""

import pytest

from repro.cli import CliRuntime, MethodBuilder
from repro.errors import ExecutionFault, TypeMismatch
from repro.sim import Engine

from tests.cli.conftest import run


def invoke(runtime, method, args=()):
    return runtime.engine.run_process(runtime.invoke(method, args))


def test_constant_return(runtime):
    m = MethodBuilder("c", returns=True).ldc(42).ret().build()
    assert invoke(runtime, m) == 42


def test_void_method_returns_none(runtime):
    m = MethodBuilder("v").nop().ret().build()
    assert invoke(runtime, m) is None


def test_arithmetic(runtime):
    m = (
        MethodBuilder("arith", returns=True)
        .arg("a").arg("b")
        .ldarg("a").ldarg("b").add()   # a+b
        .ldarg("a").ldarg("b").sub()   # a-b
        .mul()                          # (a+b)*(a-b)
        .ret()
        .build()
    )
    assert invoke(runtime, m, [7, 3]) == 40


def test_division_truncates_toward_zero(runtime):
    m = (
        MethodBuilder("d", returns=True)
        .arg("a").arg("b").ldarg("a").ldarg("b").div().ret().build()
    )
    assert invoke(runtime, m, [7, 2]) == 3
    assert invoke(runtime, m, [-7, 2]) == -3   # C# semantics, not Python floor
    assert invoke(runtime, m, [7, -2]) == -3
    assert invoke(runtime, m, [7.0, 2.0]) == 3.5


def test_remainder_has_dividend_sign(runtime):
    m = (
        MethodBuilder("r", returns=True)
        .arg("a").arg("b").ldarg("a").ldarg("b").rem().ret().build()
    )
    assert invoke(runtime, m, [7, 3]) == 1
    assert invoke(runtime, m, [-7, 3]) == -1


def test_divide_by_zero_faults(runtime):
    m = (
        MethodBuilder("dz", returns=True)
        .arg("a").ldarg("a").ldc(0).div().ret().build()
    )
    with pytest.raises(ExecutionFault, match="DivideByZero"):
        invoke(runtime, m, [1])


def test_bitwise_and_shifts(runtime):
    m = (
        MethodBuilder("bits", returns=True)
        .ldc(0b1100).ldc(0b1010).and_()
        .ldc(1).shl()
        .ret().build()
    )
    assert invoke(runtime, m) == 0b10000


def test_comparisons_push_0_or_1(runtime):
    for op_name, a, b, expected in [
        ("ceq", 3, 3, 1), ("ceq", 3, 4, 0),
        ("cgt", 4, 3, 1), ("cgt", 3, 4, 0),
        ("clt", 3, 4, 1), ("clt", 4, 3, 0),
    ]:
        b_ = (
            MethodBuilder("cmp", returns=True)
            .arg("a").arg("b").ldarg("a").ldarg("b")
        )
        getattr(b_, op_name)()
        m = b_.ret().build()
        assert invoke(runtime, m, [a, b]) == expected, (op_name, a, b)


def test_locals_and_args_mutation(runtime):
    m = (
        MethodBuilder("swap_sum", returns=True)
        .arg("a").arg("b").local("t")
        .ldarg("a").stloc("t")
        .ldarg("b").starg("a")
        .ldloc("t").starg("b")
        .ldarg("a").ldarg("b").sub()
        .ret().build()
    )
    assert invoke(runtime, m, [10, 4]) == -6  # swapped: 4 - 10


def test_loop_sum(runtime):
    m = (
        MethodBuilder("sum_to_n", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("acc").ret().build()
    )
    assert invoke(runtime, m, [100]) == sum(range(100))


def test_execution_takes_simulated_time(engine, runtime):
    m = (
        MethodBuilder("spin")
        .local("i").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldc(10_000).clt().brfalse("done")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done").ret().build()
    )
    invoke(runtime, m)
    # ~60k instructions at 60ns each, plus JIT.
    assert engine.now > 1e-3
    assert runtime.interpreter.instructions_executed.value > 50_000


def test_call_between_methods(runtime):
    callee = (
        MethodBuilder("double", returns=True)
        .arg("x").ldarg("x").ldc(2).mul().ret().build()
    )
    caller = (
        MethodBuilder("quad", returns=True)
        .arg("x").ldarg("x").call(callee).call(callee).ret().build()
    )
    assert invoke(runtime, caller, [5]) == 20


def test_call_by_name_via_resolver(engine, runtime):
    from repro.cli import AssemblyBuilder

    ab = AssemblyBuilder("lib")
    ab.add_method(
        "Math",
        MethodBuilder("inc", returns=True).arg("x").ldarg("x").ldc(1).add().ret().build(),
    )
    run(engine, runtime.load_assembly(ab.build()))
    caller = (
        MethodBuilder("go", returns=True)
        .ldc(41).call(("Math::inc", 1, True)).ret().build()
    )
    assert invoke(runtime, caller) == 42


def test_call_signature_mismatch_faults(engine, runtime):
    from repro.cli import AssemblyBuilder

    ab = AssemblyBuilder("lib")
    ab.add_method(
        "Math",
        MethodBuilder("inc", returns=True).arg("x").ldarg("x").ldc(1).add().ret().build(),
    )
    run(engine, runtime.load_assembly(ab.build()))
    caller = (
        MethodBuilder("go", returns=True)
        .ldc(1).ldc(2).call(("Math::inc", 2, True)).ret().build()
    )
    with pytest.raises(ExecutionFault, match="signature mismatch"):
        invoke(runtime, caller)


def test_recursion_depth_limited(runtime):
    rec = MethodBuilder("rec", returns=True)
    rec.call(("Program::rec", 0, True)).ret()
    m = rec.build()
    from repro.cli import AssemblyBuilder

    ab = AssemblyBuilder("lib")
    ab.add_method("Program", m)
    run(runtime.engine, runtime.load_assembly(ab.build()))
    with pytest.raises(ExecutionFault, match="call depth"):
        invoke(runtime, m)


def test_intrinsic_plain_function(runtime):
    runtime.register_intrinsic("host_add", lambda a, b: a + b)
    m = (
        MethodBuilder("go", returns=True)
        .ldc(2).ldc(3).call_intrinsic("host_add", 2, True).ret().build()
    )
    assert invoke(runtime, m) == 5


def test_intrinsic_coroutine_consumes_sim_time(engine, runtime):
    def slow_io(n):
        yield engine.timeout(0.5)
        return n * 10

    runtime.register_intrinsic("slow_io", slow_io)
    m = (
        MethodBuilder("go", returns=True)
        .ldc(7).call_intrinsic("slow_io", 1, True).ret().build()
    )
    assert invoke(runtime, m) == 70
    assert engine.now >= 0.5


def test_unknown_intrinsic_faults(runtime):
    m = MethodBuilder("go").call_intrinsic("ghost", 0, False).ret().build()
    with pytest.raises(ExecutionFault, match="unknown intrinsic"):
        invoke(runtime, m)


def test_newarr_ldlen_and_gc_accounting(runtime):
    m = (
        MethodBuilder("go", returns=True)
        .ldc(1000).newarr().ldlen().ret().build()
    )
    assert invoke(runtime, m) == 1000
    assert runtime.heap.total_allocated.value == 8000


def test_ldstr_allocates(runtime):
    m = MethodBuilder("go", returns=True).ldstr("hello").ret().build()
    assert invoke(runtime, m) == "hello"
    assert runtime.heap.total_allocated.value == 10  # UTF-16


def test_conv(runtime):
    m = (
        MethodBuilder("go", returns=True)
        .ldc(2**33 + 5).conv("i4").ret().build()
    )
    assert invoke(runtime, m) == 5
    m2 = MethodBuilder("f", returns=True).ldc(3).conv("r8").ret().build()
    assert invoke(runtime, m2) == 3.0
    m3 = MethodBuilder("g", returns=True).ldc(-1).conv("i4").ret().build()
    assert invoke(runtime, m3) == -1


def test_type_mismatch_faults(runtime):
    m = (
        MethodBuilder("bad", returns=True)
        .ldstr("x").ldc(1).add().ret().build()
    )
    with pytest.raises(TypeMismatch):
        invoke(runtime, m)


def test_unverified_method_rejected(runtime):
    from repro.cli.cil import Instruction, Op
    from repro.cli.metadata import MethodDef

    m = MethodDef("raw", [Instruction(Op.RET)])
    with pytest.raises(ExecutionFault, match="not verified"):
        invoke(runtime, m)


def test_wrong_arg_count_rejected(runtime):
    m = MethodBuilder("one", returns=True).arg("x").ldarg("x").ret().build()
    with pytest.raises(ExecutionFault, match="expects 1 args"):
        invoke(runtime, m, [1, 2])

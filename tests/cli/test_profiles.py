"""Tests for the VM cost profiles."""

import pytest

from repro.cli.profiles import VM_PROFILES, get_profile
from repro.errors import CliError


def test_expected_profiles_present():
    assert set(VM_PROFILES) == {"sscli", "commercial", "interpreter"}


def test_get_profile_case_insensitive():
    assert get_profile("SSCLI") is VM_PROFILES["sscli"]


def test_unknown_profile_rejected():
    with pytest.raises(CliError):
        get_profile("graalvm")


def test_profile_cost_relationships():
    sscli = get_profile("sscli")
    commercial = get_profile("commercial")
    interp = get_profile("interpreter")
    # Optimizing JIT: slower compile, faster code.
    assert commercial.jit.base_cost > sscli.jit.base_cost
    assert commercial.interp.instruction_cost < sscli.interp.instruction_cost
    # Interpreter: no compile cost, slowest code.
    assert interp.jit.base_cost == 0.0
    assert interp.jit.per_instruction_cost == 0.0
    assert interp.interp.instruction_cost > sscli.interp.instruction_cost


def test_profiles_drive_the_runtime():
    from repro.cli import CliRuntime, MethodBuilder
    from repro.sim import Engine

    m = MethodBuilder("f", returns=True).ldc(1).ret().build()

    def first_call_time(profile_name):
        profile = get_profile(profile_name)
        engine = Engine()
        rt = CliRuntime(engine, jit_params=profile.jit, interp_params=profile.interp)
        engine.run_process(rt.invoke(m))
        return engine.now

    assert first_call_time("commercial") > first_call_time("sscli")
    assert first_call_time("interpreter") < first_call_time("sscli")

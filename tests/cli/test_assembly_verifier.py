"""Tests for the method builder, metadata, and bytecode verifier."""

import pytest

from repro.cli import AssemblyBuilder, MethodBuilder, Op
from repro.cli.cil import Instruction
from repro.cli.metadata import MethodDef
from repro.cli.verifier import verify_method
from repro.errors import CliError, VerificationError


def test_simple_method_builds_and_verifies():
    m = MethodBuilder("three", returns=True).ldc(3).ret().build()
    assert m.size == 2
    assert m.max_stack == 1
    assert m.returns


def test_builder_name_validation():
    with pytest.raises(CliError):
        MethodBuilder("3bad")
    with pytest.raises(CliError):
        MethodBuilder("no-dash")
    with pytest.raises(CliError):
        MethodBuilder("")


def test_duplicate_param_local_label_rejected():
    with pytest.raises(CliError):
        MethodBuilder("m").arg("x").arg("x")
    with pytest.raises(CliError):
        MethodBuilder("m").local("v").local("v")
    with pytest.raises(CliError):
        MethodBuilder("m").label("a").nop().label("a")


def test_undeclared_names_rejected():
    with pytest.raises(CliError):
        MethodBuilder("m").ldloc("ghost")
    with pytest.raises(CliError):
        MethodBuilder("m").ldarg("ghost")


def test_undefined_label_rejected_at_build():
    b = MethodBuilder("m").br("nowhere").ret()
    with pytest.raises(CliError):
        b.build()


def test_build_twice_rejected():
    b = MethodBuilder("m").ret()
    b.build()
    with pytest.raises(CliError):
        b.build()


def test_loop_with_labels_resolves():
    m = (
        MethodBuilder("sum_to_n", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc")
        .ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("acc").ret()
        .build()
    )
    # Branch operands are integer indices after build.
    assert all(
        isinstance(i.operand, int)
        for i in m.body
        if i.op in (Op.BR, Op.BRTRUE, Op.BRFALSE)
    )


def test_call_target_validation():
    with pytest.raises(CliError):
        MethodBuilder("m").call("just-a-string")
    with pytest.raises(CliError):
        MethodBuilder("m").call(("name", "not-int", True))
    with pytest.raises(CliError):
        MethodBuilder("m").call_intrinsic("x", -1, False)


# ---------------------------------------------------------------------------
# Verifier
# ---------------------------------------------------------------------------

def _raw(name, body, params=0, local_count=0, returns=False):
    return MethodDef(
        name,
        body,
        param_names=[f"a{i}" for i in range(params)],
        local_count=local_count,
        returns=returns,
    )


def test_verifier_empty_body():
    with pytest.raises(VerificationError):
        verify_method(_raw("m", []))


def test_verifier_stack_underflow():
    m = _raw("m", [Instruction(Op.POP), Instruction(Op.RET)])
    with pytest.raises(VerificationError, match="pops"):
        verify_method(m)


def test_verifier_ret_depth_mismatch():
    # Returns declared but stack empty at ret.
    m = _raw("m", [Instruction(Op.RET)], returns=True)
    with pytest.raises(VerificationError, match="ret with stack depth"):
        verify_method(m)
    # Value left behind on a void method.
    m2 = _raw("m", [Instruction(Op.LDC, 1), Instruction(Op.RET)])
    with pytest.raises(VerificationError, match="ret with stack depth"):
        verify_method(m2)


def test_verifier_branch_out_of_range():
    m = _raw("m", [Instruction(Op.BR, 99), Instruction(Op.RET)])
    with pytest.raises(VerificationError, match="out of range"):
        verify_method(m)


def test_verifier_unresolved_label():
    m = _raw("m", [Instruction(Op.BR, "label"), Instruction(Op.RET)])
    with pytest.raises(VerificationError, match="unresolved"):
        verify_method(m)


def test_verifier_falls_off_end():
    m = _raw("m", [Instruction(Op.NOP)])
    with pytest.raises(VerificationError, match="falls off"):
        verify_method(m)


def test_verifier_inconsistent_join_depth():
    # Path A arrives at index 3 with depth 1; path B with depth 0.
    body = [
        Instruction(Op.LDC, 1),       # 0: depth 1
        Instruction(Op.BRTRUE, 3),    # 1: pops → depth 0, branch to 3
        Instruction(Op.LDC, 7),       # 2: depth 1, falls into 3
        Instruction(Op.NOP),          # 3: join — 0 vs 1
        Instruction(Op.RET),
    ]
    with pytest.raises(VerificationError, match="inconsistent"):
        verify_method(_raw("m", body))


def test_verifier_local_and_arg_ranges():
    m = _raw("m", [Instruction(Op.LDLOC, 2), Instruction(Op.RET)], local_count=1)
    with pytest.raises(VerificationError, match="local index"):
        verify_method(m)
    m2 = _raw("m", [Instruction(Op.LDARG, 0), Instruction(Op.POP), Instruction(Op.RET)])
    with pytest.raises(VerificationError, match="argument index"):
        verify_method(m2)


def test_verifier_max_stack_recorded():
    m = (
        MethodBuilder("deep", returns=True)
        .ldc(1).ldc(2).ldc(3).add().add().ret()
        .build()
    )
    assert m.max_stack == 3


def test_verifier_call_effects():
    callee = MethodBuilder("callee", returns=True).arg("a").ldarg("a").ret().build()
    m = (
        MethodBuilder("caller", returns=True)
        .ldc(5).call(callee).ret()
        .build()
    )
    assert m.max_stack == 1


def test_verifier_intrinsic_effects():
    m = (
        MethodBuilder("m", returns=True)
        .ldc(1).ldc(2)
        .call_intrinsic("two_in_one_out", 2, True)
        .ret()
        .build()
    )
    assert m.max_stack == 2


# ---------------------------------------------------------------------------
# Assembly metadata
# ---------------------------------------------------------------------------

def test_assembly_builder_and_lookup():
    ab = AssemblyBuilder("bench")
    main = MethodBuilder("main").ret().build()
    helper = MethodBuilder("helper").ret().build()
    ab.add_method("Program", main)
    ab.add_method("Program", helper)
    asm = ab.build()
    assert asm.method_count == 2
    assert asm.find_method("Program::main") is main
    assert asm.find_method("helper") is helper
    with pytest.raises(CliError):
        asm.find_method("Program::missing")
    with pytest.raises(CliError):
        asm.find_method("Nope::main")


def test_assembly_ambiguous_bare_name():
    ab = AssemblyBuilder("bench")
    ab.add_method("A", MethodBuilder("go").ret().build())
    ab.add_method("B", MethodBuilder("go").ret().build())
    with pytest.raises(CliError, match="ambiguous"):
        ab.build().find_method("go")


def test_duplicate_method_and_type():
    ab = AssemblyBuilder("bench")
    ab.add_method("A", MethodBuilder("go").ret().build())
    with pytest.raises(CliError):
        ab.add_method("A", MethodBuilder("go").ret().build())
    with pytest.raises(CliError):
        ab.add_type("A")

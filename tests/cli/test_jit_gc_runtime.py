"""Tests for the JIT cost model, GC model, threads, runtime, perfcounter."""

import pytest

from repro.cli import (
    CliRuntime,
    GcParams,
    JitParams,
    ManagedHeap,
    MethodBuilder,
    PerformanceCounter,
    Stopwatch,
)
from repro.errors import CliError, JitError
from repro.sim import Engine

from tests.cli.conftest import run


# ---------------------------------------------------------------------------
# JIT
# ---------------------------------------------------------------------------

def test_first_call_pays_jit_cost(engine, runtime):
    m = MethodBuilder("f", returns=True).ldc(1).ret().build()

    def scenario():
        t0 = engine.now
        yield from runtime.invoke(m)
        first = engine.now - t0
        t1 = engine.now
        yield from runtime.invoke(m)
        second = engine.now - t1
        return first, second

    first, second = run(engine, scenario())
    assert first > second
    assert first - second >= runtime.jit.params.base_cost * 0.9
    assert runtime.jit.methods_compiled.value == 1


def test_jit_cost_scales_with_body_size(engine):
    rt = CliRuntime(engine)
    small = MethodBuilder("small", returns=True).ldc(1).ret().build()
    big_b = MethodBuilder("big", returns=True)
    for _ in range(200):
        big_b.nop()
    big = big_b.ldc(1).ret().build()
    assert rt.jit.compile_cost(big) > rt.jit.compile_cost(small)


def test_concurrent_first_calls_compile_once(engine, runtime):
    m = MethodBuilder("f", returns=True).ldc(1).ret().build()

    def worker():
        yield from runtime.invoke(m)

    for _ in range(5):
        engine.process(worker())
    engine.run()
    assert runtime.jit.methods_compiled.value == 1


def test_cold_restart_forgets_compilation(engine, runtime):
    m = MethodBuilder("f", returns=True).ldc(1).ret().build()
    run(engine, runtime.invoke(m))
    runtime.cold_restart()
    run(engine, runtime.invoke(m))
    assert runtime.jit.methods_compiled.value == 2


def test_jit_params_validation():
    with pytest.raises(JitError):
        JitParams(base_cost=-1)


# ---------------------------------------------------------------------------
# GC
# ---------------------------------------------------------------------------

def test_allocation_accumulates_and_triggers_collection(engine):
    heap = ManagedHeap(engine, GcParams(gen0_threshold=1000))

    def scenario():
        for _ in range(5):
            yield from heap.allocate(300)

    run(engine, scenario())
    assert heap.collections.value == 1
    assert heap.total_allocated.value == 1500
    # Post-collection gen0 restarted.
    assert heap.gen0_bytes == 300


def test_gc_pause_recorded_and_survivors_promoted(engine):
    heap = ManagedHeap(engine, GcParams(gen0_threshold=100, survival_fraction=0.5))

    def scenario():
        yield from heap.allocate(200)

    run(engine, scenario())
    assert heap.collections.value == 1
    assert heap.promoted_bytes == 100
    assert heap.pause_times.count == 1
    assert heap.live_estimate == 100


def test_gc_params_validation():
    with pytest.raises(CliError):
        GcParams(gen0_threshold=0)
    with pytest.raises(CliError):
        GcParams(survival_fraction=1.5)
    with pytest.raises(CliError):
        GcParams(pause_base=-1)


def test_negative_allocation_rejected(engine):
    heap = ManagedHeap(engine)
    with pytest.raises(CliError):
        run(engine, heap.allocate(-1))


# ---------------------------------------------------------------------------
# Threads
# ---------------------------------------------------------------------------

def test_thread_start_and_join(engine, runtime):
    m = MethodBuilder("work", returns=True).arg("x").ldarg("x").ldc(2).mul().ret().build()

    def scenario():
        t = runtime.create_thread(m, [21])
        t.start()
        result = yield from t.join()
        return result

    assert run(engine, scenario()) == 42
    assert runtime.threads_started.value == 1


def test_thread_pays_start_overhead(engine, runtime):
    m = MethodBuilder("noop").ret().build()

    def scenario():
        t = runtime.create_thread(m).start()
        yield from t.join()
        return engine.now

    finished = run(engine, scenario())
    assert finished >= runtime.params.thread_start_overhead


def test_thread_double_start_rejected(engine, runtime):
    m = MethodBuilder("noop").ret().build()
    t = runtime.create_thread(m)
    t.start()
    with pytest.raises(CliError):
        t.start()


def test_thread_join_before_start_rejected(engine, runtime):
    m = MethodBuilder("noop").ret().build()
    t = runtime.create_thread(m)
    with pytest.raises(CliError):
        run(engine, t.join())


def test_thread_runs_raw_coroutine(engine, runtime):
    def coro():
        yield engine.timeout(1.0)
        return "done"

    def scenario():
        t = runtime.create_thread(coro()).start()
        result = yield from t.join()
        return result

    assert run(engine, scenario()) == "done"


def test_threads_run_concurrently(engine, runtime):
    def coro(delay):
        yield engine.timeout(delay)

    def scenario():
        threads = [runtime.create_thread(coro(1.0)).start() for _ in range(4)]
        for t in threads:
            yield from t.join()
        return engine.now

    finished = run(engine, scenario())
    # Concurrent, not serialized: ~1s plus start overheads, well under 4s.
    assert finished < 2.0


# ---------------------------------------------------------------------------
# Runtime facade
# ---------------------------------------------------------------------------

def test_assembly_load_charges_time(engine, runtime):
    from repro.cli import AssemblyBuilder

    ab = AssemblyBuilder("app")
    for i in range(10):
        ab.add_method("T", MethodBuilder(f"m{i}").ret().build())

    def scenario():
        t0 = engine.now
        yield from runtime.load_assembly(ab.build())
        return engine.now - t0

    elapsed = run(engine, scenario())
    expected = (
        runtime.params.assembly_load_base
        + 10 * runtime.params.assembly_load_per_method
    )
    assert elapsed == pytest.approx(expected)


def test_duplicate_assembly_rejected(engine, runtime):
    from repro.cli import AssemblyBuilder

    asm = AssemblyBuilder("app").build()
    run(engine, runtime.load_assembly(asm))
    from repro.cli.metadata import AssemblyDef

    with pytest.raises(CliError):
        run(engine, runtime.load_assembly(AssemblyDef("app")))


def test_duplicate_intrinsic_rejected(runtime):
    runtime.register_intrinsic("x", lambda: None)
    with pytest.raises(CliError):
        runtime.register_intrinsic("x", lambda: None)


def test_invoke_by_name(engine, runtime):
    from repro.cli import AssemblyBuilder

    ab = AssemblyBuilder("app")
    ab.add_method("P", MethodBuilder("main", returns=True).ldc(9).ret().build())
    run(engine, runtime.load_assembly(ab.build()))
    assert run(engine, runtime.invoke("P::main")) == 9


def test_find_method_missing(runtime):
    with pytest.raises(CliError):
        runtime.find_method("Nope::nothing")


# ---------------------------------------------------------------------------
# Performance counter / stopwatch
# ---------------------------------------------------------------------------

def test_perfcounter_tracks_sim_time(engine):
    pc = PerformanceCounter(engine, frequency=1_000_000)
    assert pc.query() == 0

    def scenario():
        yield engine.timeout(0.5)

    engine.process(scenario())
    engine.run()
    assert pc.query() == 500_000
    assert pc.ticks_to_ms(500_000) == pytest.approx(500.0)


def test_stopwatch(engine):
    pc = PerformanceCounter(engine, frequency=10_000_000)
    sw = Stopwatch(pc)

    def scenario():
        sw.start()
        yield engine.timeout(0.25)
        sw.stop()
        yield engine.timeout(0.25)  # not counted
        sw.start()
        yield engine.timeout(0.1)
        sw.stop()

    engine.process(scenario())
    engine.run()
    assert sw.elapsed_seconds == pytest.approx(0.35)
    assert sw.elapsed_ms == pytest.approx(350.0)


def test_stopwatch_misuse(engine):
    sw = Stopwatch(PerformanceCounter(engine))
    with pytest.raises(CliError):
        sw.stop()
    sw.start()
    with pytest.raises(CliError):
        sw.start()
    sw.reset()
    assert not sw.running
    assert sw.elapsed_ticks == 0


def test_perfcounter_validation(engine):
    with pytest.raises(CliError):
        PerformanceCounter(engine, frequency=0)

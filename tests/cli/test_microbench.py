"""Tests for the CIL microbenchmark kernels."""

import pytest

from repro.cli.microbench import KERNELS, build_kernel, run_kernel, run_suite
from repro.errors import CliError


def test_kernel_registry():
    assert set(KERNELS) == {"arith", "branch", "call", "alloc"}
    with pytest.raises(CliError):
        build_kernel("quantum")
    with pytest.raises(CliError):
        run_kernel("arith", n=0)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_results_are_correct(name):
    """Every kernel's CIL result matches the pure-Python oracle."""
    result = run_kernel(name, n=60)
    assert result.correct, (name, result.result, result.expected)
    assert result.instructions > 0
    assert result.first_call_time > result.warm_call_time > 0
    assert result.warmup_ratio > 1.0


def test_arith_kernel_specific_value():
    r = run_kernel("arith", n=10)
    assert r.result == sum(i * i + 3 * i for i in range(10)) == 420


def test_branch_kernel_specific_value():
    r = run_kernel("branch", n=15)
    # multiples of exactly one of {3,5} below 15: 3,5,6,9,10,12 → 6
    assert r.result == 6


def test_alloc_kernel_triggers_gc():
    # 300 arrays of up to 299 elements * 8 B ≈ 360 KB > 256 KB gen-0.
    r = run_kernel("alloc", n=300)
    assert r.correct
    assert r.gc_collections >= 1


def test_call_kernel_costs_more_than_arith():
    arith = run_kernel("arith", n=200)
    call = run_kernel("call", n=200)
    assert call.warm_call_time > arith.warm_call_time


def test_profiles_order_warm_performance():
    slow = run_kernel("arith", n=200, profile="interpreter")
    mid = run_kernel("arith", n=200, profile="sscli")
    fast = run_kernel("arith", n=200, profile="commercial")
    assert fast.warm_call_time < mid.warm_call_time < slow.warm_call_time
    # The interpreter has no compile delay: its cold/warm ratio is ~1.
    assert slow.warmup_ratio < 1.2
    assert fast.warmup_ratio > mid.warmup_ratio


def test_run_suite_covers_grid():
    results = run_suite(n=30, profiles=["sscli", "interpreter"])
    assert len(results) == 2 * len(KERNELS)
    assert all(r.correct for r in results)
    profiles = {r.profile for r in results}
    assert profiles == {"sscli", "interpreter"}

"""Shared fixtures for CLI-VM tests."""

import pytest

from repro.cli import CliRuntime
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def runtime(engine):
    return CliRuntime(engine)


def run(engine, gen):
    return engine.run_process(gen)

"""Regression tests: every VerificationError names the failing pc and
opcode, and ``record_types`` attaches typed entry facts."""

import pytest

from repro.analysis.lattice import Kind
from repro.cli.cil import Instruction, Op
from repro.cli.metadata import MethodDef
from repro.cli.verifier import verify_method
from repro.errors import VerificationError


def raw(name, body, **kw):
    return MethodDef(name, [Instruction(op, operand)
                            for op, operand in body], **kw)


def test_underflow_names_pc_and_opcode():
    m = raw("U", [(Op.POP, None), (Op.RET, None)])
    with pytest.raises(VerificationError, match=r"U@0: pop pops 1"):
        verify_method(m)


def test_branch_out_of_range_names_source_pc_and_opcode():
    m = raw("B", [(Op.BR, 99), (Op.RET, None)])
    with pytest.raises(
        VerificationError, match=r"B@0: br: branch target 99 out of range"
    ):
        verify_method(m)


def test_unresolved_label_names_pc_and_opcode():
    m = raw("L", [(Op.LDC, 1), (Op.BRTRUE, "nowhere"), (Op.RET, None)])
    with pytest.raises(
        VerificationError,
        match=r"L@1: brtrue: unresolved branch label 'nowhere'",
    ):
        verify_method(m)


def test_local_index_error_names_pc_and_opcode():
    m = raw("Loc", [(Op.LDLOC, 3), (Op.POP, None), (Op.RET, None)],
            local_count=1)
    with pytest.raises(
        VerificationError, match=r"Loc@0: ldloc: local index 3"
    ):
        verify_method(m)


def test_argument_index_error_names_pc_and_opcode():
    m = raw("Arg", [(Op.LDARG, 2), (Op.POP, None), (Op.RET, None)],
            param_names=["only"])
    with pytest.raises(
        VerificationError, match=r"Arg@0: ldarg: argument index 2"
    ):
        verify_method(m)


def test_falls_off_end_names_pc_and_opcode():
    m = raw("F", [(Op.LDC, 1), (Op.POP, None)])
    with pytest.raises(
        VerificationError,
        match=r"F@1: pop: execution falls off the end",
    ):
        verify_method(m)


def test_inconsistent_depth_names_source_pc_and_opcode():
    # 0: ldc; 1: brtrue 3 (depth 0 at 3); 2: ldc (depth 1 at 3) — clash.
    m = raw("D", [
        (Op.LDC, 1), (Op.BRTRUE, 3), (Op.LDC, 5), (Op.RET, None),
    ], returns=True)
    with pytest.raises(
        VerificationError,
        match=r"D@\d+: (brtrue|ldc): inconsistent stack depth at 3",
    ):
        verify_method(m)


def test_malformed_call_operand_names_pc_and_opcode():
    m = raw("C", [(Op.CALL, "garbage"), (Op.RET, None)])
    with pytest.raises(
        VerificationError,
        match=r"C@0: call: malformed call operand: 'garbage'",
    ):
        verify_method(m)


def test_malformed_intrinsic_operand_names_pc_and_opcode():
    m = raw("I", [(Op.CALLINTRINSIC, ("x",)), (Op.RET, None)])
    with pytest.raises(
        VerificationError,
        match=r"I@0: callintrinsic: malformed intrinsic operand",
    ):
        verify_method(m)


def test_ret_depth_error_keeps_pc():
    m = raw("R", [(Op.RET, None)], returns=True)
    with pytest.raises(
        VerificationError, match=r"R@0: ret with stack depth 0"
    ):
        verify_method(m)


def test_record_types_attaches_entry_types():
    m = raw("T", [
        (Op.LDC, 2), (Op.LDC, 3), (Op.ADD, None), (Op.RET, None),
    ], returns=True)
    assert m.entry_types is None
    verify_method(m, record_types=True)
    assert m.entry_types is not None
    assert len(m.entry_types) == len(m.body)
    assert m.entry_types[2] == (Kind.INT32, Kind.INT32)


def test_verify_without_record_types_leaves_attribute_none():
    m = raw("P", [(Op.LDC, 1), (Op.RET, None)], returns=True)
    verify_method(m)
    assert m.entry_types is None

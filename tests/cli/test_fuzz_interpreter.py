"""Differential fuzzing of the CIL interpreter.

Hypothesis generates random arithmetic expression trees; each tree is
compiled to a CIL method (post-order emission onto the evaluation
stack) and executed on the VM; the result must equal a direct Python
evaluation with C# integer semantics.  This catches stack-discipline,
operator-semantics and verifier bugs that example-based tests miss.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import CliRuntime, MethodBuilder
from repro.cli.interpreter import _truncdiv, _truncrem
from repro.errors import ExecutionFault
from repro.sim import Engine


# --- expression tree -------------------------------------------------------

class Leaf:
    def __init__(self, value):
        self.value = value


class Node:
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class Cond:
    """Ternary: ``then_e if cond_e != 0 else else_e`` — emitted as real
    branches with a join, stressing the verifier's depth analysis."""

    def __init__(self, cond, then_e, else_e):
        self.cond = cond
        self.then_e = then_e
        self.else_e = else_e


_OPS = ("add", "sub", "mul", "div", "rem", "and_", "or_", "xor")


def expressions(depth=4):
    leaf = st.builds(Leaf, st.integers(min_value=-1000, max_value=1000))
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(Node, st.sampled_from(_OPS), children, children),
            st.builds(Cond, children, children, children),
        ),
        max_leaves=16,
    )


class _Divide(Exception):
    pass


def evaluate(expr):
    """Python oracle with C# semantics; raises _Divide on /0."""
    if isinstance(expr, Leaf):
        return expr.value
    if isinstance(expr, Cond):
        # Both arms are evaluated for /0 purposes only via the taken
        # branch — the VM likewise only executes the taken arm.
        return evaluate(expr.then_e) if evaluate(expr.cond) else evaluate(expr.else_e)
    a = evaluate(expr.left)
    b = evaluate(expr.right)
    if expr.op == "add":
        return a + b
    if expr.op == "sub":
        return a - b
    if expr.op == "mul":
        return a * b
    if expr.op == "div":
        if b == 0:
            raise _Divide
        return _truncdiv(a, b)
    if expr.op == "rem":
        if b == 0:
            raise _Divide
        return _truncrem(a, b)
    if expr.op == "and_":
        return a & b
    if expr.op == "or_":
        return a | b
    return a ^ b


_label_counter = [0]


def _fresh(prefix):
    _label_counter[0] += 1
    return f"{prefix}{_label_counter[0]}"


def emit(builder, expr):
    """Post-order emission: operands on the stack, then the operator.
    Conditionals become brfalse/br with a depth-1 join point."""
    if isinstance(expr, Leaf):
        builder.ldc(expr.value)
        return
    if isinstance(expr, Cond):
        else_label = _fresh("else")
        join_label = _fresh("join")
        emit(builder, expr.cond)
        builder.brfalse(else_label)
        emit(builder, expr.then_e)
        builder.br(join_label)
        builder.label(else_label)
        emit(builder, expr.else_e)
        builder.label(join_label)
        return
    emit(builder, expr.left)
    emit(builder, expr.right)
    getattr(builder, expr.op)()


def run_on_vm(expr):
    builder = MethodBuilder("fuzzed", returns=True)
    emit(builder, expr)
    method = builder.ret().build()
    runtime = CliRuntime(Engine())
    return runtime.engine.run_process(runtime.invoke(method)), method


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_vm_matches_python_oracle(expr):
    try:
        expected = evaluate(expr)
    except _Divide:
        with pytest.raises(ExecutionFault, match="DivideByZero"):
            run_on_vm(expr)
        return
    result, method = run_on_vm(expr)
    assert result == expected
    # The verifier's max_stack must bound the real evaluation depth.
    assert method.max_stack is not None and method.max_stack >= 1


@settings(max_examples=50, deadline=None)
@given(expressions())
def test_vm_deterministic_across_runs(expr):
    try:
        evaluate(expr)
    except _Divide:
        return
    a, _ = run_on_vm(expr)
    b, _ = run_on_vm(expr)
    assert a == b


@settings(max_examples=50, deadline=None)
@given(expressions(), st.integers(min_value=-50, max_value=50))
def test_expression_plus_argument(expr, x):
    """Wrap the fuzzed expression with an argument addition, checking
    argument plumbing under arbitrary stack pressure."""
    try:
        expected = evaluate(expr) + x
    except _Divide:
        return
    builder = MethodBuilder("fuzzed_arg", returns=True).arg("x")
    emit(builder, expr)
    method = builder.ldarg("x").add().ret().build()
    runtime = CliRuntime(Engine())
    assert runtime.engine.run_process(runtime.invoke(method, [x])) == expected

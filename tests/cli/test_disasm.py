"""Tests for the CIL disassembler / textual assembler."""

import pytest

from repro.cli import CliRuntime, MethodBuilder
from repro.cli.disasm import disassemble, parse_cil
from repro.errors import CliError
from repro.sim import Engine


def invoke(method, args=()):
    runtime = CliRuntime(Engine())
    return runtime.engine.run_process(runtime.invoke(method, args))


def sum_method():
    return (
        MethodBuilder("sum_to_n", returns=True)
        .arg("n").local("i").local("acc")
        .ldc(0).stloc("acc").ldc(0).stloc("i")
        .label("top")
        .ldloc("i").ldarg("n").clt().brfalse("done")
        .ldloc("acc").ldloc("i").add().stloc("acc")
        .ldloc("i").ldc(1).add().stloc("i")
        .br("top")
        .label("done")
        .ldloc("acc").ret()
        .build()
    )


def test_disassemble_contains_structure():
    text = disassemble(sum_method())
    assert ".method sum_to_n(n) returns" in text
    assert ".locals v0 v1" in text
    assert "clt" in text
    assert "brfalse" in text
    # Branch targets became labels.
    assert "L" in text and ":" in text


def test_roundtrip_preserves_semantics():
    original = sum_method()
    rebuilt = parse_cil(disassemble(original))
    for n in (0, 1, 10, 50):
        assert invoke(rebuilt, [n]) == invoke(original, [n]) == sum(range(n))


def test_roundtrip_preserves_body_shape():
    original = sum_method()
    rebuilt = parse_cil(disassemble(original))
    assert [i.op for i in rebuilt.body] == [i.op for i in original.body]
    assert rebuilt.param_count == original.param_count
    assert rebuilt.local_count == original.local_count
    assert rebuilt.returns == original.returns


def test_parse_simple_source():
    src = """
    .method double_it(x) returns
        ldarg x
        ldc 2
        mul
        ret
    """
    m = parse_cil(src)
    assert invoke(m, [21]) == 42


def test_parse_comments_and_blank_lines():
    src = """
    ; a comment-only line
    .method f() returns

        ldc 5   ; trailing comment
        ret
    """
    assert invoke(parse_cil(src)) == 5


def test_parse_string_and_float_literals():
    m = parse_cil(".method f() returns\n ldstr 'hi'\n pop\n ldc 2.5\n ret")
    assert invoke(m) == 2.5


def test_parse_intrinsic_and_static_fields():
    src = """
    .method f() returns
        ldsfld Counters::x
        ldc 1
        add
        dup
        stsfld Counters::x
        ret
    """
    m = parse_cil(src)
    runtime = CliRuntime(Engine())
    assert runtime.engine.run_process(runtime.invoke(m)) == 1
    assert runtime.engine.run_process(runtime.invoke(m)) == 2


def test_roundtrip_with_protected_region():
    original = (
        MethodBuilder("safe_div", returns=True)
        .arg("a").arg("b")
        .begin_try()
        .ldarg("a").ldarg("b").div().ret()
        .end_try("oops")
        .label("oops").pop().ldc(-1).ret()
        .build()
    )
    text = disassemble(original)
    assert ".try" in text and ".endtry" in text
    rebuilt = parse_cil(text)
    assert invoke(rebuilt, [10, 2]) == 5
    assert invoke(rebuilt, [10, 0]) == -1


def test_parse_call_forward_reference():
    src = """
    .method go() returns
        ldc 20
        call Math::inc/1/ret
        ret
    """
    m = parse_cil(src)
    from repro.cli import AssemblyBuilder

    runtime = CliRuntime(Engine())
    ab = AssemblyBuilder("lib")
    ab.add_method(
        "Math",
        MethodBuilder("inc", returns=True).arg("x").ldarg("x").ldc(1).add().ret().build(),
    )
    runtime.engine.run_process(runtime.load_assembly(ab.build()))
    assert runtime.engine.run_process(runtime.invoke(m)) == 21


def test_cfg_flag_on_protected_region_method():
    """--cfg renders the graph for a method with a handler, and the
    listing above it still round-trips through parse_cil."""
    import io
    from contextlib import redirect_stdout

    from repro.analysis.targets import bundled_assembly
    from repro.cli.disasm import format_cfg, main

    out = io.StringIO()
    with redirect_stdout(out):
        assert main(["webserver", "Work::StartListen", "--cfg"]) == 0
    text = out.getvalue()
    assert "cfg Work::StartListen:" in text
    assert "[handler]" in text
    assert "(exception)" in text
    # The listing portion (everything before the cfg block) reparses.
    listing = text.split("cfg Work::StartListen:")[0]
    rebuilt = parse_cil(listing)
    assert rebuilt.handlers, "protected region survived the round trip"
    original = bundled_assembly("webserver").types["Work"].methods["StartListen"]
    strip_header = lambda s: s.split("\n", 1)[1]  # noqa: E731 - name differs
    assert strip_header(format_cfg(rebuilt)) == strip_header(format_cfg(original))


def test_cfg_output_matches_format_cfg():
    from repro.cli.disasm import format_cfg

    method = sum_method()
    text = format_cfg(method)
    assert text.startswith("cfg sum_to_n:")
    assert "-> B" in text
    # Deterministic across calls.
    assert text == format_cfg(method)


def test_main_unknown_assembly_exits_2(capsys):
    from repro.cli.disasm import main

    assert main(["no_such_bundle"]) == 2
    assert "error" in capsys.readouterr().err


def test_main_unknown_method_exits_2(capsys):
    from repro.cli.disasm import main

    assert main(["webserver", "No::Such"]) == 2
    assert "error" in capsys.readouterr().err


def test_parse_errors():
    with pytest.raises(CliError, match="\\.method"):
        parse_cil("ldc 1\nret")
    with pytest.raises(CliError, match="mnemonic"):
        parse_cil(".method f()\n frobnicate\n ret")
    with pytest.raises(CliError, match="operand"):
        parse_cil(".method f()\n ldc\n ret")
    with pytest.raises(CliError, match="argc"):
        parse_cil(".method f()\n callintrinsic Foo/x\n ret")
    with pytest.raises(CliError, match="empty"):
        parse_cil("   \n ; nothing\n")
    with pytest.raises(CliError, match="one \\.method"):
        parse_cil(".method a()\n ret\n.method b()\n ret")
    with pytest.raises(CliError, match="malformed"):
        parse_cil(".method broken\n ret")

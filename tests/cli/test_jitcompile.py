"""Differential tests: template-compiled tier vs interpreter tier.

The compiled tier must be observationally identical to the
interpreter on everything the simulation can see: return values,
instruction counts, exception counters, and — critically — the exact
sequence of simulated events at the exact simulated times.
"""

import pytest

from repro.cli import CliRuntime, ManagedException, MethodBuilder
from repro.cli.cil import Instruction, Op
from repro.cli.jitcompile import compile_native, native_eligible, native_source
from repro.cli.metadata import MethodDef
from repro.cli.microbench import KERNELS, run_kernel
from repro.cli.profiles import VM_PROFILES
from repro.cli.verifier import verify_method
from repro.errors import ExecutionFault
from repro.sim import Engine


def _runtime(native: bool) -> CliRuntime:
    rt = CliRuntime(Engine())
    rt.jit.native_enabled = native
    return rt


def _run(rt: CliRuntime, method, args=()):
    return rt.engine.run_process(rt.invoke(method, args))


def _drive(rt: CliRuntime, method, args=()):
    """Drive one invocation by hand, recording every yielded event as
    ``(type_name, delay)`` — the full simulated-event fingerprint."""
    # Warm the JIT so the cold-path compile events don't differ by tier
    # bookkeeping order; both tiers charge them identically anyway.
    try:
        _run(rt, method, args)
    except ManagedException:
        pass
    events = []
    gen = rt.interpreter.invoke(method, args)
    try:
        while True:
            ev = gen.send(None)
            events.append((type(ev).__name__, getattr(ev, "delay", None)))
    except StopIteration as stop:
        return events, stop.value
    except ManagedException as exc:
        return events, ("raised", exc.type_name)


# ---------------------------------------------------------------------------
# Kernel oracles
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("profile", sorted(VM_PROFILES))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_differential(kernel, profile, monkeypatch):
    """Identical results AND identical simulated times on every
    ext_cil kernel oracle, under every VM profile."""
    monkeypatch.setenv("REPRO_JIT_NATIVE", "0")
    interpreted = run_kernel(kernel, n=120, profile=profile)
    monkeypatch.setenv("REPRO_JIT_NATIVE", "1")
    compiled = run_kernel(kernel, n=120, profile=profile)
    assert compiled == interpreted
    assert compiled.correct


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_event_sequence_identical(kernel):
    """Not just the totals: the exact event-by-event timeline."""
    from repro.cli.microbench import build_kernel

    method, _expected = build_kernel(kernel)
    seq_interp, val_interp = _drive(_runtime(False), method, [50])
    seq_native, val_native = _drive(_runtime(True), method, [50])
    assert val_native == val_interp
    assert seq_native == seq_interp


# ---------------------------------------------------------------------------
# Exception paths
# ---------------------------------------------------------------------------

def _catcher():
    return (
        MethodBuilder("catcher", returns=True)
        .arg("x")
        .begin_try()
        .ldc(100).ldarg("x").div()
        .ret()
        .end_try("handler")
        .label("handler")
        .pop()
        .ldc(111).ret()
        .build()
    )


def _thrower():
    return (
        MethodBuilder("thrower", returns=True)
        .begin_try()
        .ldstr("boom").throw()
        .end_try("h")
        .label("h").pop().ldc(7).ret()
        .build()
    )


@pytest.mark.parametrize("arg,expected", [(4, 25), (0, 111)])
def test_catch_differential(arg, expected):
    for native in (False, True):
        rt = _runtime(native)
        assert _run(rt, _catcher(), [arg]) == expected
    seq_i, val_i = _drive(_runtime(False), _catcher(), [arg])
    seq_n, val_n = _drive(_runtime(True), _catcher(), [arg])
    assert (seq_n, val_n) == (seq_i, val_i)


def test_throw_and_catch_differential():
    seq_i, val_i = _drive(_runtime(False), _thrower())
    seq_n, val_n = _drive(_runtime(True), _thrower())
    assert val_i == val_n == 7
    assert seq_n == seq_i


def test_uncaught_throw_differential():
    m = MethodBuilder("t", returns=True).ldstr("boom").throw().build()
    seq_i, val_i = _drive(_runtime(False), m)
    seq_n, val_n = _drive(_runtime(True), m)
    assert val_i == val_n == ("raised", "System.Exception")
    assert seq_n == seq_i


def test_unhandled_divide_by_zero_differential():
    m = (
        MethodBuilder("boom", returns=True)
        .arg("x").ldc(1).ldarg("x").div().ret()
        .build()
    )
    seq_i, val_i = _drive(_runtime(False), m, [0])
    seq_n, val_n = _drive(_runtime(True), m, [0])
    assert val_i == val_n == ("raised", "System.DivideByZeroException")
    assert seq_n == seq_i


def test_exception_counters_match():
    for native in (False, True):
        rt = _runtime(native)
        assert _run(rt, _catcher(), [0]) == 111
        assert rt.interpreter.exceptions_caught.value == 1
        rt2 = _runtime(native)
        assert _run(rt2, _thrower()) == 7
        assert rt2.interpreter.exceptions_thrown.value == 1
        assert rt2.interpreter.exceptions_caught.value == 1


def test_webserver_handlers_all_compile():
    from repro.webserver.server import build_handler_methods

    for method in build_handler_methods():
        assert native_eligible(method), method.full_name


# ---------------------------------------------------------------------------
# Statics and conversions
# ---------------------------------------------------------------------------

def test_statics_differential():
    m = (
        MethodBuilder("acc", returns=True)
        .arg("x")
        .ldsfld("Counter.total").ldarg("x").add().stsfld("Counter.total")
        .ldsfld("Counter.total").ret()
        .build()
    )
    for native in (False, True):
        rt = _runtime(native)
        assert _run(rt, m, [5]) == 5
        assert _run(rt, m, [3]) == 8
        assert rt.interpreter.statics["Counter.total"] == 8


def test_conv_differential():
    m = (
        MethodBuilder("wrap", returns=True)
        .arg("x").ldarg("x").conv("i4").ret()
        .build()
    )
    for value in (2**31, -(2**31) - 1, 12.9):
        results = [_run(_runtime(nat), m, [value]) for nat in (False, True)]
        assert results[0] == results[1]


# ---------------------------------------------------------------------------
# Eligibility and the generated artifact
# ---------------------------------------------------------------------------

def test_unknown_conv_is_ineligible_and_falls_back():
    body = [
        Instruction(Op.LDC, 1),
        Instruction(Op.CONV, "u2"),
        Instruction(Op.RET),
    ]
    m = MethodDef("weird", body, returns=True)
    verify_method(m)
    assert not native_eligible(m)
    assert native_source(m, None) is None
    assert compile_native(m, _runtime(True).interpreter.params) is None
    # The interpreter tier still executes it (and faults at runtime).
    with pytest.raises(ExecutionFault, match="unknown conversion"):
        _run(_runtime(True), m)


def test_unverified_method_is_ineligible():
    m = MethodBuilder("m", returns=True).ldc(1).ret().build()
    m.max_stack = None
    assert not native_eligible(m)
    assert not native_eligible(m, gate="analysis")


@pytest.mark.parametrize("operand", [
    None,                       # missing operand entirely
    "just-a-string",            # direct-call operands must be tuples
    ("OneElement",),            # wrong arity
    ("A::B", "not-an-int", True),   # argc not an int
    ("A::B", 1, True, "extra"),     # too long
])
def test_malformed_call_tuple_is_ineligible_not_an_error(operand):
    """Junk call operands must make the gate answer False, never raise:
    ineligible methods fall back to the interpreter tier."""
    m = MethodDef("junkcall", [
        Instruction(Op.CALL, operand),
        Instruction(Op.RET, None),
    ])
    m.max_stack = 1  # pretend-verified so only the operand shape gates
    assert not native_eligible(m)
    assert not native_eligible(m, gate="analysis")
    assert native_source(m, None) is None


@pytest.mark.parametrize("kind", ["u2", "i2", "r4", "", None, 42])
def test_unknown_conv_kinds_are_ineligible_not_errors(kind):
    m = MethodDef("conv", [
        Instruction(Op.LDC, 1),
        Instruction(Op.CONV, kind),
        Instruction(Op.RET, None),
    ], returns=True)
    m.max_stack = 1
    assert not native_eligible(m)
    assert not native_eligible(m, gate="analysis")


def test_non_string_ldstr_is_ineligible_not_an_error():
    m = MethodDef("badstr", [
        Instruction(Op.LDSTR, 123),
        Instruction(Op.POP, None),
        Instruction(Op.RET, None),
    ])
    m.max_stack = 1
    assert not native_eligible(m)
    assert not native_eligible(m, gate="analysis")


def test_ineligible_method_still_runs_on_interpreter_tier():
    """The gate declining is silent: execution proceeds interpreted."""
    m = MethodDef("fallback", [
        Instruction(Op.LDC, 40),
        Instruction(Op.CONV, "u2"),  # gate-ineligible conv kind
        Instruction(Op.RET, None),
    ], returns=True)
    verify_method(m)
    rt = _runtime(True)
    assert rt.jit.native_for(m, rt.interpreter.params) is None
    with pytest.raises(ExecutionFault, match="unknown conversion"):
        _run(rt, m)


def test_native_source_is_inspectable():
    m = MethodBuilder("m", returns=True).ldc(2).ldc(3).mul().ret().build()
    rt = _runtime(True)
    source = native_source(m, rt.interpreter.params)
    assert source is not None and "def _compiled" in source
    fn = compile_native(m, rt.interpreter.params)
    assert fn.__cil_source__ == source
    assert "(2 * 3)" in source  # constants fused at compile time


def test_native_cache_reused_per_params():
    rt = _runtime(True)
    m = MethodBuilder("m", returns=True).ldc(1).ret().build()
    _run(rt, m)
    fn1 = rt.jit.native_for(m, rt.interpreter.params)
    fn2 = rt.jit.native_for(m, rt.interpreter.params)
    assert fn1 is fn2


def test_native_disabled_env(monkeypatch):
    monkeypatch.setenv("REPRO_JIT_NATIVE", "0")
    rt = CliRuntime(Engine())
    assert not rt.jit.native_enabled
    m = MethodBuilder("m", returns=True).ldc(41).ldc(1).add().ret().build()
    assert _run(rt, m) == 42
    assert rt.jit.native_for(m, rt.interpreter.params) is None

"""Tests for the common type system."""

import pytest

from repro.cli import CliType, PrimitiveKind, TypeRegistry
from repro.cli.typesystem import INT32, STRING, VOID
from repro.errors import CliError, TypeMismatch


def test_primitive_lookup():
    reg = TypeRegistry()
    assert reg.primitive("int32") is INT32
    assert reg.primitive("string") is STRING
    with pytest.raises(CliError):
        reg.primitive("quaternion")


def test_primitive_properties():
    assert INT32.is_primitive
    assert INT32.is_numeric
    assert not INT32.is_reference
    assert STRING.is_reference
    assert not STRING.is_numeric
    assert not VOID.is_numeric


def test_register_class():
    reg = TypeRegistry()
    t = reg.register_class("WebServer")
    assert t.is_reference
    assert not t.is_primitive
    # Idempotent.
    assert reg.register_class("WebServer") is t


def test_class_name_collision_with_primitive():
    reg = TypeRegistry()
    with pytest.raises(CliError):
        reg.register_class("int32")


def test_array_types():
    reg = TypeRegistry()
    arr = reg.array_of(INT32)
    assert arr.is_array
    assert arr.is_reference
    assert arr.element is INT32
    assert arr.name == "int32[]"
    # Interned.
    assert reg.array_of(INT32) is arr


def test_resolve_including_arrays():
    reg = TypeRegistry()
    reg.register_class("Buffer")
    assert reg.resolve("Buffer").name == "Buffer"
    nested = reg.resolve("int32[][]")
    assert nested.is_array
    assert nested.element.name == "int32[]"
    with pytest.raises(CliError):
        reg.resolve("Missing")


def test_contains():
    reg = TypeRegistry()
    assert "int32" in reg
    assert "int32[]" in reg
    assert "Missing" not in reg

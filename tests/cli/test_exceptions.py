"""Tests for managed exception handling and static fields."""

import pytest

from repro.cli import CliRuntime, ManagedException, MethodBuilder
from repro.cli.metadata import ExceptionHandler
from repro.errors import CliError, ExecutionFault, VerificationError
from repro.sim import Engine


def invoke(runtime, method, args=()):
    return runtime.engine.run_process(runtime.invoke(method, args))


# ---------------------------------------------------------------------------
# Builder + verifier
# ---------------------------------------------------------------------------

def test_unclosed_try_rejected():
    b = MethodBuilder("m").begin_try().nop()
    with pytest.raises(CliError, match="unclosed"):
        b.ret().build()


def test_end_try_without_begin_rejected():
    with pytest.raises(CliError, match="without a matching"):
        MethodBuilder("m").end_try("h")


def test_empty_try_rejected():
    b = MethodBuilder("m").begin_try()
    with pytest.raises(CliError, match="empty"):
        b.end_try("h")


def test_undefined_handler_label_rejected():
    b = MethodBuilder("m").begin_try().nop().end_try("ghost").ret()
    with pytest.raises(CliError, match="ghost"):
        b.build()


def test_verifier_checks_handler_entry_depth():
    from repro.cli.cil import Instruction, Op
    from repro.cli.metadata import MethodDef
    from repro.cli.verifier import verify_method

    # Handler entry (seeded at depth 1) collides with the fall-through
    # path at depth 0 — rejected either as an inconsistent join or as a
    # bad ret depth, depending on traversal order.
    body = [Instruction(Op.NOP), Instruction(Op.RET)]
    m = MethodDef("m", body, handlers=[ExceptionHandler(0, 1, 1)])
    with pytest.raises(VerificationError, match="inconsistent|ret with stack depth"):
        verify_method(m)


def test_verifier_rejects_malformed_region():
    from repro.cli.cil import Instruction, Op
    from repro.cli.metadata import MethodDef
    from repro.cli.verifier import verify_method

    body = [Instruction(Op.NOP), Instruction(Op.RET)]
    with pytest.raises(VerificationError, match="malformed"):
        verify_method(MethodDef("m", body, handlers=[ExceptionHandler(1, 1, 0)]))
    with pytest.raises(VerificationError, match="out of range"):
        verify_method(MethodDef("m", body, handlers=[ExceptionHandler(0, 1, 9)]))


def test_throw_with_empty_stack_rejected():
    from repro.cli.cil import Instruction, Op
    from repro.cli.metadata import MethodDef
    from repro.cli.verifier import verify_method

    with pytest.raises(VerificationError, match="empty stack"):
        verify_method(MethodDef("m", [Instruction(Op.THROW)]))


def catcher_method():
    """returns 111 if the protected body throws, else the body value."""
    return (
        MethodBuilder("catcher", returns=True)
        .arg("x")
        .begin_try()
        .ldc(100).ldarg("x").div()   # throws when x == 0
        .ret()
        .end_try("handler")
        .label("handler")
        .pop()                        # discard the exception object
        .ldc(111).ret()
        .build()
    )


# ---------------------------------------------------------------------------
# Runtime semantics
# ---------------------------------------------------------------------------

@pytest.fixture
def runtime():
    return CliRuntime(Engine())


def test_no_exception_takes_normal_path(runtime):
    assert invoke(runtime, catcher_method(), [4]) == 25


def test_divide_by_zero_caught(runtime):
    assert invoke(runtime, catcher_method(), [0]) == 111
    assert runtime.interpreter.exceptions_caught.value == 1


def test_explicit_throw_and_catch(runtime):
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .ldstr("boom").throw()
        .end_try("h")
        .label("h").pop().ldc(7).ret()
        .build()
    )
    assert invoke(runtime, m) == 7
    assert runtime.interpreter.exceptions_thrown.value == 1


def test_uncaught_exception_propagates_to_host(runtime):
    m = MethodBuilder("t", returns=True).ldstr("boom").throw().build()
    with pytest.raises(ManagedException, match="boom"):
        invoke(runtime, m)


def test_exception_unwinds_through_callee(runtime):
    thrower = (
        MethodBuilder("thrower", returns=True)
        .ldc(1).ldc(0).div().ret()
        .build()
    )
    caller = (
        MethodBuilder("caller", returns=True)
        .begin_try()
        .call(thrower).ret()
        .end_try("h")
        .label("h").pop().ldc(42).ret()
        .build()
    )
    assert invoke(runtime, caller) == 42


def test_handler_receives_exception_object(runtime):
    runtime.register_intrinsic("inspect", lambda exc: exc.type_name)
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .ldc(1).ldc(0).div().pop().ldc(0).ret()
        .end_try("h")
        .label("h")
        .call_intrinsic("inspect", 1, True)
        .ret()
        .build()
    )
    assert invoke(runtime, m) == "System.DivideByZeroException"


def test_catch_type_filter(runtime):
    """A handler whose `catches` prefix does not match lets the
    exception keep unwinding."""
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .ldc(1).ldc(0).div().ret()
        .end_try("h", catches="System.Null")
        .label("h").pop().ldc(1).ret()
        .build()
    )
    with pytest.raises(ManagedException, match="DivideByZero"):
        invoke(runtime, m)


def test_nested_regions_prefer_innermost(runtime):
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .begin_try()
        .ldc(1).ldc(0).div().ret()
        .end_try("inner")
        .ret()
        .end_try("outer")
        .label("inner").pop().ldc(1).ret()
        .label("outer").pop().ldc(2).ret()
        .build()
    )
    assert invoke(runtime, m) == 1


def test_intrinsic_raised_managed_exception_is_catchable(runtime):
    def failing_io():
        raise ManagedException("System.IO.IOException", "disk on fire")

    runtime.register_intrinsic("Fail.IO", failing_io)
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .call_intrinsic("Fail.IO", 0, False)
        .ldc(0).ret()
        .end_try("h")
        .label("h").pop().ldc(99).ret()
        .build()
    )
    assert invoke(runtime, m) == 99


def test_intrinsic_coroutine_exception_is_catchable(runtime):
    engine = runtime.engine

    def failing_slow_io():
        yield engine.timeout(0.25)
        raise ManagedException("System.IO.IOException", "late failure")

    runtime.register_intrinsic("Fail.Slow", failing_slow_io)
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .call_intrinsic("Fail.Slow", 0, False)
        .ldc(0).ret()
        .end_try("h")
        .label("h").pop().ldc(5).ret()
        .build()
    )
    assert invoke(runtime, m) == 5
    assert engine.now >= 0.25


def test_exception_costs_simulated_time(runtime):
    engine = runtime.engine
    m = catcher_method()
    invoke(runtime, m, [4])  # warm the JIT
    t0 = engine.now
    invoke(runtime, m, [0])
    exceptional = engine.now - t0
    t1 = engine.now
    invoke(runtime, m, [4])
    normal = engine.now - t1
    assert exceptional > normal


def test_null_ldlen_raises_catchable_nullref(runtime):
    m = (
        MethodBuilder("t", returns=True)
        .begin_try()
        .ldc(None).ldlen().ret()
        .end_try("h", catches="System.NullReference")
        .label("h").pop().ldc(404).ret()
        .build()
    )
    assert invoke(runtime, m) == 404


# ---------------------------------------------------------------------------
# Static fields
# ---------------------------------------------------------------------------

def test_static_fields_default_zero(runtime):
    m = MethodBuilder("t", returns=True).ldsfld("Counters::hits").ret().build()
    assert invoke(runtime, m) == 0


def test_static_fields_persist_across_invocations(runtime):
    bump = (
        MethodBuilder("bump", returns=True)
        .ldsfld("Counters::hits").ldc(1).add()
        .dup().stsfld("Counters::hits")
        .ret()
        .build()
    )
    assert invoke(runtime, bump) == 1
    assert invoke(runtime, bump) == 2
    assert invoke(runtime, bump) == 3
    assert runtime.interpreter.statics["Counters::hits"] == 3


def test_static_fields_shared_between_methods(runtime):
    writer = MethodBuilder("w").ldc(17).stsfld("Shared::v").ret().build()
    reader = MethodBuilder("r", returns=True).ldsfld("Shared::v").ret().build()
    invoke(runtime, writer)
    assert invoke(runtime, reader) == 17

"""Reintroduced PR 8 concurrency bugs, kept as sanitizer fixtures.

Both bugs were found and fixed in the cluster PR; they live on here in
their original shape so the sanitizer's three checkers are each pinned
against a *real* defect from this codebase's history:

* :func:`stale_accept_loop` — the stopped-listener bug: the accept
  loop snapshots ``listener.listening`` once and trusts the local
  across every accept wait, so a same-instant crash is a data race on
  the listener state (and the stale flag survives a stop).
* :func:`no_redrive_put` — the write-across-readmit bug: the
  replicated write computes the admitted set once and never re-reads
  it, so a replica readmitted while a POST is in flight is committed
  against without ever acking (a ``replicate_before_ack`` violation).

This module is linted by the tests as data — it must NOT carry
``sanitizer: allow`` pragmas, and it is deliberately outside the
``src/`` tree the CI lint sweeps.
"""

from repro.cluster.replication import base_size


# -- fixture A: the stopped-listener accept loop ----------------------------

def stale_accept_loop(listener, handled):
    """BUG: caches ``listener.listening`` across the accept wait."""
    live = listener.listening
    while True:
        sock = yield from listener.accept_socket()
        if not live:
            break
        handled.append(sock)


def parked_accept_loop(listener, handled):
    """FIX (production shape): never snapshot the flag — accept parks
    on a stopped listener and resumes when it restarts."""
    while True:
        sock = yield from listener.accept_socket()
        handled.append(sock)


# -- fixture B: the no-re-drive replicated write ----------------------------

def no_redrive_put(client, key):
    """BUG: computes the admitted set once, never re-reads it, and
    commits against whatever the balancer says *at commit time*."""
    lock = client.lock_for(key)
    grant = lock.acquire()
    yield grant
    try:
        version = client.log.next_version(key)
        size = base_size(key) + version
        pending = client.balancer.write_targets(key)
        acked = 0
        while acked < len(pending):
            name = pending[acked]
            result = yield from client._http[name].post(key, size)
            if result.status == 201:
                tracer = client.engine.tracer
                if tracer.enabled:
                    tracer.instant("cluster.replica_ack", "cluster",
                                   key=key, node=name, version=version)
            acked += 1
        client.log.commit(key, version, size,
                          replicas=tuple(client.balancer.replicas(key)),
                          now=client.engine.now)
    finally:
        lock.release(grant)

"""The stale-read-across-wait AST lint, rule by rule."""

import textwrap
from pathlib import Path

from repro.analysis.staleread import (
    PRAGMA,
    SHARED_ATTRS,
    lint_source,
)

PATH = Path("mod.py")


def lint(code):
    return lint_source(textwrap.dedent(code), PATH)


# -- R1: linear stale read --------------------------------------------------

def test_r1_use_across_a_wait_is_flagged():
    findings = lint("""
        def loop(listener, eng):
            live = listener.listening
            yield eng.timeout(1.0)
            return live
        """)
    assert [f.rule for f in findings] == ["R1:linear"]
    f = findings[0]
    assert (f.local, f.shared_expr) == ("live", "listener.listening")
    assert f.assign_line == 3 and f.line == 5


def test_r1_wait_embedded_in_assignment_rhs_counts():
    # ``x = yield from f()`` — the wait IS the RHS; a pre-wait shared
    # snapshot used after it must still be flagged (the fixture-A bug).
    findings = lint("""
        def loop(listener, handled):
            live = listener.listening
            sock = yield from listener.accept_socket()
            if not live:
                handled.append(sock)
        """)
    assert [(f.rule, f.local) for f in findings] == [("R1:linear", "live")]


def test_use_before_the_wait_is_clean():
    assert lint("""
        def loop(listener, eng):
            live = listener.listening
            if live:
                yield eng.timeout(1.0)
        """) == []


def test_reread_after_the_wait_is_clean():
    assert lint("""
        def loop(listener, eng):
            live = listener.listening
            yield eng.timeout(1.0)
            live = listener.listening
            return live
        """) == []


# -- R2 / R3: loop shapes ---------------------------------------------------

def test_r2_refresh_below_use_inside_yielding_loop():
    findings = lint("""
        def drain(node, eng):
            backlog = node.pending
            while True:
                if backlog:
                    yield eng.timeout(1.0)
                backlog = node.pending
        """)
    assert ("R2:loop-back-edge", "backlog") in [
        (f.rule, f.local) for f in findings]


def test_r3_pre_loop_snapshot_never_refreshed():
    findings = lint("""
        def drive(client, eng, key):
            targets = client.balancer.write_targets(key)
            for name in list(targets):
                yield eng.timeout(1.0)
                use(name)
        """)
    assert [(f.rule, f.local) for f in findings] == [
        ("R3:pre-loop-snapshot", "targets")]
    assert findings[0].shared_expr == "client.balancer.write_targets"


def test_loop_without_wait_is_clean():
    assert lint("""
        def walk(client, eng, key):
            targets = client.balancer.write_targets(key)
            for name in list(targets):
                use(name)
            yield eng.timeout(1.0)
        """) == []


# -- scope and ownership rules ----------------------------------------------

def test_self_attributes_are_not_shared():
    assert lint("""
        def poll(self, eng):
            mine = self.pending
            yield eng.timeout(1.0)
            return mine
        """) == []


def test_non_shared_attribute_is_clean():
    assert lint("""
        def poll(node, eng):
            label = node.display_name
            yield eng.timeout(1.0)
            return label
        """) == []


def test_functions_without_waits_are_skipped():
    assert lint("""
        def check(listener):
            live = listener.listening
            return live
        """) == []


def test_nested_function_is_its_own_scope():
    # The outer function yields but the stale pattern lives wholly in
    # the nested (non-yielding) closure, which cannot go stale.
    assert lint("""
        def outer(listener, eng):
            def inner():
                live = listener.listening
                return live
            yield eng.timeout(1.0)
            return inner()
        """) == []


# -- pragma suppression -----------------------------------------------------

def test_pragma_on_use_line_suppresses():
    assert lint("""
        def loop(listener, eng):
            live = listener.listening
            yield eng.timeout(1.0)
            return live  # sanitizer: allow
        """) == []


def test_pragma_on_assign_line_suppresses_all_uses():
    assert lint("""
        def loop(listener, eng):
            live = listener.listening  # sanitizer: allow
            yield eng.timeout(1.0)
            if live:
                return live
        """) == []


# -- robustness -------------------------------------------------------------

def test_syntax_error_becomes_a_parse_finding():
    findings = lint_source("def broken(:\n", PATH)
    assert [f.rule for f in findings] == ["parse"]


def test_finding_to_dict_round_trip():
    findings = lint("""
        def loop(listener, eng):
            live = listener.listening
            yield eng.timeout(1.0)
            return live
        """)
    payload = findings[0].to_dict()
    assert payload["path"] == "mod.py"
    assert payload["rule"] == "R1:linear"
    assert PRAGMA in payload["message"]


def test_shared_attr_set_covers_the_pr8_surfaces():
    assert {"listening", "write_targets", "is_admitted"} <= SHARED_ATTRS

"""The happens-before race detector: what races, and what does not."""

from repro.sanitizer import disable, enable, sanitized, shared
from repro.sanitizer import runtime
from repro.sim import Engine, Event, Store


def run_two(body_a, body_b):
    """Run two root-spawned sibling processes under a fresh detector."""
    with sanitized() as det:
        eng = Engine()
        var = shared("spot")
        eng.process(body_a(eng, var))
        eng.process(body_b(eng, var))
        eng.run()
    return det


def test_unordered_same_time_write_write_races():
    def a(eng, var):
        var.write(eng, op="a")
        yield eng.timeout(1.0)

    def b(eng, var):
        var.write(eng, op="b")
        yield eng.timeout(1.0)

    det = run_two(a, b)
    assert len(det.races) == 1
    report = det.races[0]
    assert report.var_name.startswith("spot#")
    assert report.time == 0.0
    assert {report.first.op, report.second.op} == {"a", "b"}


def test_write_read_at_same_instant_races():
    def a(eng, var):
        var.write(eng, op="mutate")
        yield eng.timeout(1.0)

    def b(eng, var):
        var.read(eng, op="peek")
        yield eng.timeout(1.0)

    det = run_two(a, b)
    assert len(det.races) == 1


def test_read_read_never_races():
    def a(eng, var):
        var.read(eng, op="a")
        yield eng.timeout(1.0)

    def b(eng, var):
        var.read(eng, op="b")
        yield eng.timeout(1.0)

    assert run_two(a, b).races == []


def test_distinct_timestamps_never_race():
    # The engine orders distinct times deterministically; only
    # same-instant conflicts are schedule-sensitive.
    def a(eng, var):
        var.write(eng, op="early")
        yield eng.timeout(1.0)

    def b(eng, var):
        yield eng.timeout(0.5)
        var.write(eng, op="late")

    assert run_two(a, b).races == []


def test_relaxed_access_suppresses_the_pair():
    def a(eng, var):
        var.write(eng, op="control-plane", relaxed=True)
        yield eng.timeout(1.0)

    def b(eng, var):
        var.read(eng, op="probe")
        yield eng.timeout(1.0)

    assert run_two(a, b).races == []


def test_spawn_edge_orders_parent_before_child():
    with sanitized() as det:
        eng = Engine()
        var = shared("inherited")

        def child():
            var.write(eng, op="child")
            yield eng.timeout(0)

        def parent():
            var.write(eng, op="parent")
            eng.process(child())  # spawn edge: parent write precedes
            yield eng.timeout(0)

        eng.process(parent())
        eng.run()
    assert det.races == []


def test_event_trigger_orders_producer_before_waiter():
    with sanitized() as det:
        eng = Engine()
        var = shared("handoff")
        gate = Event(eng)

        def producer():
            yield eng.timeout(0)
            var.write(eng, op="produce")
            gate.succeed(None)

        def consumer():
            yield gate
            var.read(eng, op="consume")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
    assert det.races == []


def test_store_edge_orders_producer_before_consumer_same_instant():
    with sanitized() as det:
        eng = Engine()
        var = shared("queued")
        store = Store(eng)

        def producer():
            yield eng.timeout(1.0)
            var.write(eng, op="fill")
            store.put("x")

        def consumer():
            yield store.get()
            var.read(eng, op="use")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
    assert det.races == []


def test_duplicate_pairs_report_once():
    with sanitized() as det:
        eng = Engine()
        var = shared("repeat")

        def a():
            for _ in range(3):
                var.write(eng, op="a")
            yield eng.timeout(0)

        def b():
            for _ in range(3):
                var.write(eng, op="b")
            yield eng.timeout(0)

        eng.process(a())
        eng.process(b())
        eng.run()
    # Nine conflicting pairs, one distinct (site, op) signature.
    assert len(det.races) == 1


def test_format_report_mentions_both_contexts():
    def a(eng, var):
        var.write(eng, op="a")
        yield eng.timeout(1.0)

    def b(eng, var):
        var.write(eng, op="b")
        yield eng.timeout(1.0)

    det = run_two(a, b)
    text = det.format_report()
    assert "race" in text
    assert "write" in text
    assert det.summary()["races"] == 1
    assert det.summary()["accesses"] == 2


def test_enable_disable_roundtrip():
    prev = disable()  # tolerate a suite-wide REPRO_SANITIZE detector
    try:
        det = enable()
        assert runtime.active is det
        assert disable() is det
        assert runtime.active is None
    finally:
        if prev is not None:
            enable(prev)


def test_sanitized_restores_previous_detector():
    outer = enable()
    try:
        with sanitized() as inner:
            assert runtime.active is inner
            assert inner is not outer
        assert runtime.active is outer
    finally:
        disable()


def test_detector_off_means_zero_tracking():
    prev = disable()  # tolerate a suite-wide REPRO_SANITIZE detector
    try:
        eng = Engine()
        var = shared("idle")
        var.read(eng, op="noop")  # no detector: annotation is inert
        with sanitized() as det:
            pass
        assert det.accesses == 0
        assert det.races == []
    finally:
        if prev is not None:
            enable(prev)

"""The sanitizer vs. the two real PR 8 bugs (kept in fixtures.py).

Each bug is pinned three ways where applicable: the static lint flags
its shape, the dynamic checker (race detector or invariant machine)
catches it in a live run, and the *fixed* production shape passes the
same scenario clean.
"""

from pathlib import Path

import pytest

from repro.analysis.staleread import lint_file
from repro.cluster import ClusterConfig, FileCluster
from repro.errors import DeadlockError
from repro.io.net import Network, TcpListener
from repro.obs import Tracer
from repro.sanitizer import sanitized
from repro.sanitizer.invariants import check_events
from repro.sim import Engine

from . import fixtures

FIXTURES = Path(fixtures.__file__)


# -- static: the lint flags both bugs ---------------------------------------

def test_lint_flags_both_fixture_bugs():
    findings = lint_file(FIXTURES)
    assert [(f.local, f.rule, f.shared_expr) for f in findings] == [
        ("live", "R1:linear", "listener.listening"),
        ("pending", "R3:pre-loop-snapshot", "client.balancer.write_targets"),
        ("pending", "R3:pre-loop-snapshot", "client.balancer.write_targets"),
    ]


def test_lint_does_not_flag_the_fixed_accept_loop():
    source = FIXTURES.read_text(encoding="utf-8")
    lines = source.splitlines()
    start = next(i for i, text in enumerate(lines, start=1)
                 if text.startswith("def parked_accept_loop"))
    end = next(i for i, text in enumerate(lines, start=1)
               if i > start and text.startswith("def "))
    for finding in lint_file(FIXTURES):
        assert not start <= finding.line < end, finding


# -- dynamic, fixture A: stale accept loop vs same-instant stop -------------

def _run_accept_scenario(loop_fn):
    with sanitized() as det:
        eng = Engine()
        net = Network(eng)
        listener = TcpListener(net, "srv", 80)
        listener.start()
        handled = []
        eng.process(loop_fn(listener, handled))

        def crasher():
            listener.stop()
            yield eng.timeout(0)

        eng.process(crasher())
        # The accept loop parks forever on the stopped listener's empty
        # backlog — that deadlock IS the quiescent end state here.
        with pytest.raises(DeadlockError):
            eng.run()
    return det


def test_stale_accept_loop_races_with_a_same_instant_stop():
    det = _run_accept_scenario(fixtures.stale_accept_loop)
    assert det.races, "the cached-flag read must race the stop"
    ops = {det.races[0].first.op, det.races[0].second.op}
    assert ops == {"listening", "stop"}


def test_parked_accept_loop_is_race_free_in_the_same_scenario():
    det = _run_accept_scenario(fixtures.parked_accept_loop)
    assert det.races == []


# -- dynamic, fixture B: write-across-readmit vs the invariant checker ------

def _run_readmit_scenario(put_fn):
    """Crash a replica, start a write while it is ejected, recover it
    so probes readmit it mid-POST.  Returns the trace events."""
    tracer = Tracer()
    cluster = FileCluster(ClusterConfig(
        nodes=3, replication=2, num_keys=4, tracer=tracer))
    client = cluster.client()
    eng = cluster.engine
    key = cluster.keys[0]
    victim = cluster.balancer.replicas(key)[-1]
    # Slow the LAN so one POST spans the whole readmission window
    # (~3.6 KB at 20 KB/s vs. 2 probes at 20 ms).
    cluster.network.bandwidth = 20_000.0

    def scenario():
        cluster.nodes[victim].crash()
        while cluster.balancer.is_admitted(victim):
            yield eng.timeout(0.01)
        writer = eng.process(put_fn(client, key))
        yield eng.timeout(0.005)
        cluster.nodes[victim].recover()
        yield writer

    eng.run_process(scenario())
    assert cluster.balancer.is_admitted(victim), "victim must readmit"
    return tracer.events, victim


def test_no_redrive_put_commits_past_an_unacked_readmitted_replica():
    events, victim = _run_readmit_scenario(fixtures.no_redrive_put)
    violations = check_events(events)
    assert [v.invariant for v in violations] == ["replicate_before_ack"]
    assert victim in violations[0].message


def test_production_put_re_drives_the_readmitted_replica_clean():
    events, _ = _run_readmit_scenario(lambda client, key: client.put(key))
    assert check_events(events) == []

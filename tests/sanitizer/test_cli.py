"""Exit codes and output shapes of ``python -m repro.sanitizer``."""

import json

import pytest

from repro.sanitizer.__main__ import main


def trace_line(name, start, **attrs):
    return json.dumps({
        "kind": "instant", "name": name, "cat": "cluster",
        "start": start, "end": start, "id": 0, "parent": None,
        "pid": 0, "tid": 0, "attrs": attrs,
    })


@pytest.fixture
def clean_trace(tmp_path):
    path = tmp_path / "clean.jsonl"
    path.write_text("\n".join([
        trace_line("cluster.replica_ack", 1.0, key="k", version=1, node="n1"),
        trace_line("cluster.commit", 1.1, key="k", version=1, size=64,
                   admitted="n1"),
    ]) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def bad_trace(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("\n".join([
        trace_line("cluster.commit", 1.0, key="k", version=1, size=64,
                   admitted="n1,n2"),
        trace_line("lb.readmit", 2.0, node="n3"),
    ]) + "\n", encoding="utf-8")
    return path


# -- check ------------------------------------------------------------------

def test_check_clean_trace_exits_zero(clean_trace, capsys):
    assert main(["check", str(clean_trace)]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out
    assert "replicate_before_ack" in out  # the checked-invariants line


def test_check_violations_exit_one(bad_trace, capsys):
    assert main(["check", str(bad_trace)]) == 1
    out = capsys.readouterr().out
    assert "[replicate_before_ack]" in out
    assert "[eject_readmit_monotonic]" in out
    assert "2 violation(s)" in out


def test_check_invariant_selection_narrows(bad_trace, capsys):
    assert main(["check", str(bad_trace),
                 "--invariant", "in_sync_before_serve"]) == 0
    out = capsys.readouterr().out
    assert "checked [in_sync_before_serve]: 0 violation(s)" in out


def test_check_unknown_invariant_exits_two(clean_trace, capsys):
    assert main(["check", str(clean_trace),
                 "--invariant", "nope"]) == 2
    assert "unknown invariant" in capsys.readouterr().err


def test_check_missing_file_exits_two(tmp_path, capsys):
    assert main(["check", str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot check" in capsys.readouterr().err


def test_check_malformed_trace_exits_two(tmp_path, capsys):
    path = tmp_path / "garbage.jsonl"
    path.write_text("not json\n", encoding="utf-8")
    assert main(["check", str(path)]) == 2
    assert "cannot check" in capsys.readouterr().err


def test_check_json_format_payload(bad_trace, capsys):
    assert main(["check", str(bad_trace), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"] == str(bad_trace)
    assert payload["invariants"] == sorted(payload["invariants"])
    assert [v["invariant"] for v in payload["violations"]] == [
        "replicate_before_ack", "eject_readmit_monotonic"]
    assert all({"invariant", "pid", "time", "message"} <= set(v)
               for v in payload["violations"])


# -- lint -------------------------------------------------------------------

def test_lint_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("def f(eng):\n    yield eng.timeout(1.0)\n",
                    encoding="utf-8")
    assert main(["lint", str(path)]) == 0
    assert "stale-read lint: 0 finding(s)" in capsys.readouterr().out


def test_lint_findings_exit_one(tmp_path, capsys):
    path = tmp_path / "stale.py"
    path.write_text(
        "def f(listener, eng):\n"
        "    live = listener.listening\n"
        "    yield eng.timeout(1.0)\n"
        "    return live\n",
        encoding="utf-8")
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:4:" in out
    assert "[R1:linear]" in out
    assert "stale-read lint: 1 finding(s)" in out


def test_lint_missing_path_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "absent")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_lint_json_format_payload(tmp_path, capsys):
    path = tmp_path / "stale.py"
    path.write_text(
        "def f(listener, eng):\n"
        "    live = listener.listening\n"
        "    yield eng.timeout(1.0)\n"
        "    return live\n",
        encoding="utf-8")
    assert main(["lint", str(path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["R1:linear"]
    assert payload["findings"][0]["local"] == "live"


def test_lint_directory_walk_is_deterministic(tmp_path, capsys):
    for name in ("b.py", "a.py"):
        (tmp_path / name).write_text(
            "def f(listener, eng):\n"
            "    live = listener.listening\n"
            "    yield eng.timeout(1.0)\n"
            "    return live\n",
            encoding="utf-8")
    assert main(["lint", str(tmp_path)]) == 1
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith(str(tmp_path / "a.py"))
    assert lines[1].startswith(str(tmp_path / "b.py"))


def test_production_tree_is_lint_clean(capsys):
    # The deliberate snapshots in src/ carry pragmas; the tree must
    # stay clean so the CI sweep is blocking.
    assert main(["lint", "src/repro"]) == 0

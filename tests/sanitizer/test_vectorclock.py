"""Vector-clock algebra: fork, join, and the happened-before test."""

from repro.sanitizer.vectorclock import (
    fork_clock,
    happened_before,
    join_into,
    joined,
)


def test_fork_from_nothing_starts_at_one():
    clock = fork_clock(None, 7)
    assert clock == {7: 1}


def test_fork_copies_parent_and_ticks_child():
    parent = {1: 4, 2: 2}
    child = fork_clock(parent, 3)
    assert child == {1: 4, 2: 2, 3: 1}
    # The copy is independent of the parent.
    child[1] = 99
    assert parent[1] == 4


def test_join_into_takes_componentwise_max():
    clock = {1: 3, 2: 1}
    join_into(clock, {2: 5, 3: 2})
    assert clock == {1: 3, 2: 5, 3: 2}


def test_joined_leaves_operands_untouched():
    a = {1: 1}
    b = {2: 2}
    assert joined(a, b) == {1: 1, 2: 2}
    assert a == {1: 1} and b == {2: 2}


def test_happened_before_is_component_lookup():
    # An access by tid 4 at epoch 2 is ordered before any context whose
    # clock has seen tid 4 reach >= 2.
    assert happened_before(4, 2, {4: 2})
    assert happened_before(4, 2, {4: 7, 9: 1})
    assert not happened_before(4, 2, {4: 1})
    assert not happened_before(4, 2, {9: 10})


def test_fork_then_join_orders_both_ways():
    parent = fork_clock(None, 1)
    parent[1] = 5
    child = fork_clock(parent, 2)
    # Child sees everything the parent had done at the fork.
    assert happened_before(1, 5, child)
    # Parent has not seen the child's work until an explicit join.
    assert not happened_before(2, 1, parent)
    join_into(parent, child)
    assert happened_before(2, 1, parent)

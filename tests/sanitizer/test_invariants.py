"""Protocol-invariant machines over synthetic trace events."""

import pytest

from repro.sanitizer.invariants import INVARIANTS, Violation, check_events


class Ev:
    """Minimal stand-in for a TraceEvent: name/start/pid/attrs."""

    def __init__(self, name, start, pid=0, **attrs):
        self.name = name
        self.start = start
        self.pid = pid
        self.attrs = attrs


def names(violations):
    return [v.invariant for v in violations]


# -- replicate_before_ack ---------------------------------------------------

def test_commit_with_all_acks_is_clean():
    events = [
        Ev("cluster.replica_ack", 1.0, key="k", version=1, node="n1"),
        Ev("cluster.replica_ack", 1.1, key="k", version=1, node="n2"),
        Ev("cluster.commit", 1.2, key="k", version=1, size=64,
           admitted="n1,n2"),
    ]
    assert check_events(events, ["replicate_before_ack"]) == []


def test_commit_against_unacked_admitted_replica_violates():
    events = [
        Ev("cluster.replica_ack", 1.0, key="k", version=1, node="n1"),
        Ev("cluster.commit", 1.2, key="k", version=1, size=64,
           admitted="n1,n2"),
    ]
    violations = check_events(events, ["replicate_before_ack"])
    assert names(violations) == ["replicate_before_ack"]
    assert "n2" in violations[0].message
    assert "acked: n1" in violations[0].message


def test_acks_are_per_version():
    # An ack for v1 does not cover a commit of v2.
    events = [
        Ev("cluster.replica_ack", 1.0, key="k", version=1, node="n1"),
        Ev("cluster.commit", 1.1, key="k", version=1, size=64, admitted="n1"),
        Ev("cluster.commit", 1.2, key="k", version=2, size=65, admitted="n1"),
    ]
    violations = check_events(events, ["replicate_before_ack"])
    assert names(violations) == ["replicate_before_ack"]
    assert "v2" in violations[0].message


# -- in_sync_before_serve ---------------------------------------------------

def test_serve_by_ejected_node_violates_until_node_up():
    events = [
        Ev("lb.eject", 1.0, node="n2"),
        Ev("cluster.serve", 1.5, key="k", node="n2", kind="read", bytes=64),
        Ev("lb.readmit", 2.0, node="n2"),
        # Readmitted but not yet rebuilt: still not in sync.
        Ev("cluster.serve", 2.5, key="k", node="n2", kind="read", bytes=64),
        Ev("node.up", 3.0, node="n2"),
        Ev("cluster.serve", 3.5, key="k", node="n2", kind="read", bytes=64),
    ]
    violations = check_events(events, ["in_sync_before_serve"])
    assert names(violations) == ["in_sync_before_serve"] * 2
    assert [v.time for v in violations] == [1.5, 2.5]


def test_serve_by_healthy_node_is_clean():
    events = [
        Ev("lb.eject", 1.0, node="n2"),
        Ev("cluster.serve", 1.5, key="k", node="n1", kind="read", bytes=64),
    ]
    assert check_events(events, ["in_sync_before_serve"]) == []


# -- no_acked_write_lost ----------------------------------------------------

def test_short_read_after_commit_violates():
    events = [
        Ev("cluster.commit", 1.0, key="k", version=3, size=100,
           admitted="n1"),
        Ev("cluster.serve", 1.5, key="k", node="n1", kind="read", bytes=80),
    ]
    violations = check_events(events, ["no_acked_write_lost"])
    assert names(violations) == ["no_acked_write_lost"]
    assert "80 bytes < committed v3 size 100" in violations[0].message


def test_full_size_read_and_uncommitted_key_are_clean():
    events = [
        Ev("cluster.commit", 1.0, key="k", version=3, size=100,
           admitted="n1"),
        Ev("cluster.serve", 1.5, key="k", node="n1", kind="read", bytes=100),
        Ev("cluster.serve", 1.6, key="other", node="n1", kind="read",
           bytes=1),
    ]
    assert check_events(events, ["no_acked_write_lost"]) == []


# -- eject_readmit_monotonic ------------------------------------------------

def test_health_machine_happy_cycle_is_clean():
    events = [
        Ev("lb.eject", 1.0, node="n2"),
        Ev("lb.readmit", 2.0, node="n2"),
        Ev("node.up", 3.0, node="n2"),
        Ev("lb.eject", 4.0, node="n2"),
    ]
    assert check_events(events, ["eject_readmit_monotonic"]) == []


@pytest.mark.parametrize("events,fragment", [
    ([Ev("lb.eject", 1.0, node="n2"), Ev("lb.eject", 1.5, node="n2")],
     "already ejected"),
    ([Ev("lb.readmit", 1.0, node="n2")], "expected 'ejected'"),
    ([Ev("lb.eject", 1.0, node="n2"), Ev("node.up", 1.5, node="n2")],
     "expected 'readmitted'"),
])
def test_health_machine_illegal_transitions(events, fragment):
    violations = check_events(events, ["eject_readmit_monotonic"])
    assert names(violations) == ["eject_readmit_monotonic"]
    assert fragment in violations[0].message


# -- framework behaviour ----------------------------------------------------

def test_machines_are_per_pid():
    # An ack in pid 1 cannot satisfy a commit in pid 2.
    events = [
        Ev("cluster.replica_ack", 1.0, pid=1, key="k", version=1, node="n1"),
        Ev("cluster.commit", 1.1, pid=2, key="k", version=1, size=64,
           admitted="n1"),
    ]
    violations = check_events(events, ["replicate_before_ack"])
    assert names(violations) == ["replicate_before_ack"]
    assert violations[0].pid == 2


def test_violations_sorted_and_selection_enforced():
    events = [
        Ev("cluster.commit", 2.0, pid=1, key="k", version=1, size=64,
           admitted="n1"),
        Ev("lb.readmit", 1.0, pid=0, node="n2"),
    ]
    violations = check_events(events)
    assert [(v.pid, v.invariant) for v in violations] == [
        (0, "eject_readmit_monotonic"), (1, "replicate_before_ack")]
    with pytest.raises(KeyError):
        check_events(events, ["not_an_invariant"])


def test_violation_rendering():
    v = Violation("replicate_before_ack", 3, 1.25, "boom")
    assert str(v) == "[replicate_before_ack] pid=3 t=1.25: boom"
    assert v.to_dict() == {"invariant": "replicate_before_ack", "pid": 3,
                           "time": 1.25, "message": "boom"}


def test_bundled_invariant_registry():
    assert sorted(INVARIANTS) == [
        "eject_readmit_monotonic", "in_sync_before_serve",
        "no_acked_write_lost", "replicate_before_ack"]

"""Property-based tests for the storage layer's timing invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, DiskParams, IORequest

GEO = DiskGeometry(cylinders=5000, heads=4, sectors_per_track=100)


def make_disk(**kw):
    return Disk(Engine(), geometry=GEO, **kw)


@given(
    st.integers(min_value=0, max_value=GEO.cylinders - 1),
    st.integers(min_value=0, max_value=GEO.cylinders - 1),
)
def test_seek_time_symmetric_and_bounded(a, b):
    d = make_disk()
    t_ab = d.seek_time(a, b)
    assert t_ab == d.seek_time(b, a)
    assert 0.0 <= t_ab <= d.params.seek_full_stroke + 1e-12
    if a != b:
        assert t_ab >= d.params.seek_track_to_track


@given(
    st.integers(min_value=0, max_value=GEO.cylinders - 1),
    st.integers(min_value=0, max_value=GEO.cylinders - 1),
    st.integers(min_value=0, max_value=GEO.cylinders - 1),
)
def test_seek_time_triangle_like_monotonicity(start, near, far):
    """Seeking farther from the same start never costs less."""
    d = make_disk()
    if abs(near - start) > abs(far - start):
        near, far = far, near
    assert d.seek_time(start, near) <= d.seek_time(start, far) + 1e-15


@given(st.integers(min_value=1, max_value=10_000))
def test_transfer_time_linear(nblocks):
    d = make_disk()
    one = d.transfer_time(1)
    assert d.transfer_time(nblocks) == pytest.approx(nblocks * one, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=GEO.total_blocks - 64),
            st.integers(min_value=1, max_value=64),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_service_time_at_least_floor_cost(requests):
    """Property: every completed request's service time covers at
    least controller overhead + its transfer; response ≥ service."""
    eng = Engine()
    d = Disk(eng, geometry=GEO)
    events = [d.submit(IORequest(lba=lba, nblocks=n)) for lba, n in requests]

    def waiter():
        yield eng.all_of(events)

    eng.run_process(waiter())
    for ev, (lba, n) in zip(events, requests):
        req = ev.value
        floor = d.params.controller_overhead + d.transfer_time(n)
        assert req.service_time >= floor - 1e-12
        assert req.response_time >= req.service_time - 1e-12


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=GEO.total_blocks - 8),
        min_size=1,
        max_size=15,
    ),
    st.sampled_from(["fcfs", "sstf", "scan", "cscan"]),
)
def test_disk_timing_deterministic_across_runs(lbas, scheduler):
    """Property: identical submissions yield identical timings under
    any scheduler."""

    def run_once():
        eng = Engine()
        d = Disk(eng, geometry=GEO, scheduler=scheduler)
        events = [d.submit(IORequest(lba=lba, nblocks=8)) for lba in lbas]

        def waiter():
            yield eng.all_of(events)

        eng.run_process(waiter())
        return [ev.value.completed_at for ev in events]

    assert run_once() == run_once()

"""Tests for DiskGeometry LBA/CHS mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DiskError
from repro.storage import DiskGeometry


def test_defaults_give_2004_era_capacity():
    g = DiskGeometry()
    # ~36.9 GB
    assert 30e9 < g.capacity_bytes < 45e9
    assert g.block_size == 512


def test_totals():
    g = DiskGeometry(cylinders=10, heads=2, sectors_per_track=5, block_size=512)
    assert g.blocks_per_cylinder == 10
    assert g.total_blocks == 100
    assert g.capacity_bytes == 100 * 512


def test_chs_roundtrip_examples():
    g = DiskGeometry(cylinders=10, heads=2, sectors_per_track=5)
    assert g.chs_of(0) == (0, 0, 0)
    assert g.chs_of(4) == (0, 0, 4)
    assert g.chs_of(5) == (0, 1, 0)
    assert g.chs_of(10) == (1, 0, 0)
    assert g.chs_of(99) == (9, 1, 4)


def test_cylinder_of():
    g = DiskGeometry(cylinders=10, heads=2, sectors_per_track=5)
    assert g.cylinder_of(0) == 0
    assert g.cylinder_of(9) == 0
    assert g.cylinder_of(10) == 1


def test_lba_out_of_range():
    g = DiskGeometry(cylinders=10, heads=2, sectors_per_track=5)
    with pytest.raises(DiskError):
        g.check_lba(100)
    with pytest.raises(DiskError):
        g.check_lba(-1)


def test_lba_of_validation():
    g = DiskGeometry(cylinders=10, heads=2, sectors_per_track=5)
    with pytest.raises(DiskError):
        g.lba_of(10, 0, 0)
    with pytest.raises(DiskError):
        g.lba_of(0, 2, 0)
    with pytest.raises(DiskError):
        g.lba_of(0, 0, 5)


def test_invalid_geometry_rejected():
    with pytest.raises(DiskError):
        DiskGeometry(cylinders=0)
    with pytest.raises(DiskError):
        DiskGeometry(heads=0)
    with pytest.raises(DiskError):
        DiskGeometry(sectors_per_track=0)
    with pytest.raises(DiskError):
        DiskGeometry(block_size=0)


def test_blocks_for_bytes():
    g = DiskGeometry(block_size=512)
    assert g.blocks_for_bytes(0) == 1
    assert g.blocks_for_bytes(1) == 1
    assert g.blocks_for_bytes(512) == 1
    assert g.blocks_for_bytes(513) == 2
    assert g.blocks_for_bytes(1024) == 2
    with pytest.raises(DiskError):
        g.blocks_for_bytes(-1)


@given(st.integers(min_value=0, max_value=10 * 2 * 5 - 1))
def test_chs_roundtrip_property(lba):
    g = DiskGeometry(cylinders=10, heads=2, sectors_per_track=5)
    c, h, s = g.chs_of(lba)
    assert g.lba_of(c, h, s) == lba


@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=10_000),
)
def test_chs_in_bounds_property(cyl, heads, spt, lba):
    g = DiskGeometry(cylinders=cyl, heads=heads, sectors_per_track=spt)
    if lba >= g.total_blocks:
        with pytest.raises(DiskError):
            g.chs_of(lba)
    else:
        c, h, s = g.chs_of(lba)
        assert 0 <= c < cyl and 0 <= h < heads and 0 <= s < spt

"""Tests for disk scheduling policies (queue logic only, no timing)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DiskError
from repro.storage import DiskGeometry, IORequest, make_scheduler, SCHEDULERS

GEO = DiskGeometry(cylinders=100, heads=1, sectors_per_track=1)
# With this geometry, LBA == cylinder, which keeps tests readable.


def reqs(*cylinders):
    return [IORequest(lba=c, nblocks=1) for c in cylinders]


def drain(sched, head=0):
    order = []
    while not sched.empty:
        r = sched.pop(head)
        head = GEO.cylinder_of(r.lba)
        order.append(head)
    return order


def test_factory_rejects_unknown():
    with pytest.raises(DiskError):
        make_scheduler("elevator-of-doom", GEO)


def test_factory_builds_each_policy():
    for name in SCHEDULERS:
        sched = make_scheduler(name, GEO)
        assert sched.name == name
        assert sched.empty


def test_fcfs_preserves_order():
    s = make_scheduler("fcfs", GEO)
    for r in reqs(50, 10, 90):
        s.push(r)
    assert drain(s) == [50, 10, 90]


def test_sstf_picks_nearest():
    s = make_scheduler("sstf", GEO)
    for r in reqs(90, 10, 55):
        s.push(r)
    # head 50 → 55 (d=5); head 55 → 90 (d=35) beats 10 (d=45); then 10.
    assert drain(s, head=50) == [55, 90, 10]


def test_sstf_tie_breaks_by_insertion():
    s = make_scheduler("sstf", GEO)
    first, second = reqs(40, 60)  # equidistant from 50
    s.push(first)
    s.push(second)
    assert s.pop(50) is first


def test_scan_sweeps_up_then_down():
    s = make_scheduler("scan", GEO)
    for r in reqs(60, 40, 80, 20):
        s.push(r)
    assert drain(s, head=50) == [60, 80, 40, 20]


def test_scan_reverses_when_nothing_ahead():
    s = make_scheduler("scan", GEO)
    for r in reqs(30, 10):
        s.push(r)
    assert drain(s, head=50) == [30, 10]


def test_cscan_wraps_to_lowest():
    s = make_scheduler("cscan", GEO)
    for r in reqs(60, 40, 80, 20):
        s.push(r)
    assert drain(s, head=50) == [60, 80, 20, 40]


def test_clook_same_selection_as_cscan():
    a = make_scheduler("cscan", GEO)
    b = make_scheduler("clook", GEO)
    for r in reqs(60, 40, 80, 20):
        a.push(IORequest(lba=r.lba, nblocks=1))
        b.push(IORequest(lba=r.lba, nblocks=1))
    assert drain(a, head=50) == drain(b, head=50)


def test_pop_empty_raises():
    for name in SCHEDULERS:
        with pytest.raises(DiskError):
            make_scheduler(name, GEO).pop(0)


@given(
    st.sampled_from(sorted(SCHEDULERS)),
    st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=99),
)
def test_every_policy_serves_every_request(name, cylinders, head):
    """Work-conservation: whatever the policy, each pushed request is
    eventually popped exactly once."""
    sched = make_scheduler(name, GEO)
    pushed = reqs(*cylinders)
    for r in pushed:
        sched.push(r)
    seen = []
    while not sched.empty:
        r = sched.pop(head)
        head = GEO.cylinder_of(r.lba)
        seen.append(r)
    assert sorted(id(r) for r in seen) == sorted(id(r) for r in pushed)


@given(st.lists(st.integers(min_value=0, max_value=99), min_size=2, max_size=20))
def test_sstf_first_pick_is_globally_nearest(cylinders):
    sched = make_scheduler("sstf", GEO)
    for r in reqs(*cylinders):
        sched.push(r)
    head = 50
    first = sched.pop(head)
    assert abs(GEO.cylinder_of(first.lba) - head) == min(
        abs(c - head) for c in cylinders
    )

"""Tests for the RAID-0 striped array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DiskError
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, StripedArray

GEO = DiskGeometry(cylinders=100, heads=2, sectors_per_track=10)


def make_array(engine, ndisks=4, stripe_unit=4):
    disks = [Disk(engine, geometry=GEO, name=f"d{i}") for i in range(ndisks)]
    return StripedArray(engine, disks, stripe_unit=stripe_unit)


def test_construction_validation():
    eng = Engine()
    with pytest.raises(DiskError):
        StripedArray(eng, [])
    with pytest.raises(DiskError):
        StripedArray(eng, [Disk(eng, geometry=GEO)], stripe_unit=0)
    other = DiskGeometry(cylinders=50, heads=2, sectors_per_track=10)
    with pytest.raises(DiskError):
        StripedArray(eng, [Disk(eng, geometry=GEO), Disk(eng, geometry=other)])


def test_total_blocks_sums_members():
    eng = Engine()
    arr = make_array(eng, ndisks=4)
    assert arr.total_blocks == 4 * GEO.total_blocks
    assert arr.block_size == GEO.block_size


def test_map_block_round_robin():
    eng = Engine()
    arr = make_array(eng, ndisks=2, stripe_unit=4)
    # unit 0 → disk 0 blocks 0-3, unit 1 → disk 1 blocks 0-3,
    # unit 2 → disk 0 blocks 4-7, ...
    assert arr.map_block(0) == (0, 0)
    assert arr.map_block(3) == (0, 3)
    assert arr.map_block(4) == (1, 0)
    assert arr.map_block(7) == (1, 3)
    assert arr.map_block(8) == (0, 4)


def test_map_block_out_of_range():
    eng = Engine()
    arr = make_array(eng, ndisks=2)
    with pytest.raises(DiskError):
        arr.map_block(arr.total_blocks)


def test_split_single_unit():
    eng = Engine()
    arr = make_array(eng, ndisks=2, stripe_unit=4)
    assert arr.split(1, 2) == [(0, 1, 2)]


def test_split_spans_disks():
    eng = Engine()
    arr = make_array(eng, ndisks=2, stripe_unit=4)
    frags = arr.split(2, 6)
    assert frags == [(0, 2, 2), (1, 0, 4)]


def test_split_merges_contiguous_same_disk_runs():
    eng = Engine()
    arr = make_array(eng, ndisks=1, stripe_unit=4)
    # Single disk: all units land on it contiguously.
    assert arr.split(0, 12) == [(0, 0, 12)]


def test_split_validation():
    eng = Engine()
    arr = make_array(eng)
    with pytest.raises(DiskError):
        arr.split(0, 0)
    with pytest.raises(DiskError):
        arr.split(arr.total_blocks - 1, 2)


def test_submit_completes_with_fragments():
    eng = Engine()
    arr = make_array(eng, ndisks=2, stripe_unit=4)
    done = arr.submit_range(0, 8)
    eng.run()
    requests = done.value
    assert len(requests) == 2
    assert all(r.completed_at is not None for r in requests)


def test_striping_parallelizes_large_transfers():
    """A big sequential read over N disks should finish faster than on 1
    (with a stripe unit large enough that per-request overhead does not
    dominate, as a real array would be configured)."""
    def run(ndisks):
        eng = Engine()
        arr = make_array(eng, ndisks=ndisks, stripe_unit=128)
        done = arr.submit_range(0, 1600)  # fits the 2000-block single disk
        eng.run()
        return max(r.completed_at for r in done.value)

    t1, t4 = run(1), run(4)
    assert t4 < t1


def test_sequential_requests_stream_without_repositioning():
    eng = Engine()
    d = Disk(eng, geometry=GEO)
    first = d.submit_range(0, 8)
    eng.run()
    second = d.submit_range(8, 8)  # continues exactly at the previous end
    eng.run()
    assert second.value.service_time < first.value.service_time
    assert second.value.service_time == pytest.approx(
        d.params.controller_overhead + d.transfer_time(8)
    )


@settings(max_examples=50)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=200),
)
def test_split_partitions_range_exactly(ndisks, unit, lba, nblocks):
    """Property: fragments tile the logical range with no gap/overlap and
    every physical block is within the member disk."""
    eng = Engine()
    arr = make_array(eng, ndisks=ndisks, stripe_unit=unit)
    if lba + nblocks > arr.total_blocks:
        nblocks = arr.total_blocks - lba
        if nblocks < 1:
            return
    frags = arr.split(lba, nblocks)
    assert sum(f[2] for f in frags) == nblocks
    for disk_index, phys, run in frags:
        assert 0 <= disk_index < ndisks
        assert 0 <= phys and phys + run <= GEO.total_blocks
    # Rebuild the logical blocks from fragments, in order.
    rebuilt = []
    for disk_index, phys, run in frags:
        for i in range(run):
            rebuilt.append((disk_index, phys + i))
    expected = [arr.map_block(b) for b in range(lba, lba + nblocks)]
    assert rebuilt == expected

"""Tests for the mechanical disk model."""

import pytest

from repro.errors import DiskError
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, DiskParams, IORequest


SMALL_GEO = DiskGeometry(cylinders=100, heads=2, sectors_per_track=10)


def make_disk(engine, **kwargs):
    kwargs.setdefault("geometry", SMALL_GEO)
    return Disk(engine, **kwargs)


def test_request_validation():
    with pytest.raises(DiskError):
        IORequest(lba=-1, nblocks=1)
    with pytest.raises(DiskError):
        IORequest(lba=0, nblocks=0)


def test_params_validation():
    with pytest.raises(DiskError):
        DiskParams(rpm=0)
    with pytest.raises(DiskError):
        DiskParams(transfer_rate=0)
    with pytest.raises(DiskError):
        DiskParams(seek_track_to_track=0.01, seek_full_stroke=0.001)
    with pytest.raises(DiskError):
        DiskParams(controller_overhead=-1.0)


def test_revolution_and_latency():
    p = DiskParams(rpm=7200)
    assert p.revolution_time == pytest.approx(60.0 / 7200.0)
    assert p.avg_rotational_latency == pytest.approx(60.0 / 7200.0 / 2)


def test_seek_time_zero_for_same_cylinder():
    eng = Engine()
    d = make_disk(eng)
    assert d.seek_time(5, 5) == 0.0


def test_seek_time_monotone_in_distance():
    eng = Engine()
    d = make_disk(eng)
    times = [d.seek_time(0, dist) for dist in (1, 10, 50, 99)]
    assert times == sorted(times)
    assert times[0] >= d.params.seek_track_to_track
    assert times[-1] <= d.params.seek_full_stroke + 1e-12


def test_seek_full_stroke_cost():
    eng = Engine()
    d = make_disk(eng)
    assert d.seek_time(0, SMALL_GEO.cylinders - 1) == pytest.approx(
        d.params.seek_full_stroke
    )


def test_transfer_time_scales_with_blocks():
    eng = Engine()
    d = make_disk(eng)
    assert d.transfer_time(2) == pytest.approx(2 * d.transfer_time(1))


def test_single_request_timing():
    eng = Engine()
    d = make_disk(eng)
    done = d.submit_range(lba=0, nblocks=1)
    eng.run()
    req = done.value
    expected = (
        d.params.controller_overhead
        + d.params.avg_rotational_latency
        + d.transfer_time(1)
    )  # head starts at cylinder 0 → no seek
    assert req.service_time == pytest.approx(expected)
    assert req.completed_at == pytest.approx(expected)


def test_head_moves_to_request_cylinder():
    eng = Engine()
    d = make_disk(eng)
    lba = SMALL_GEO.lba_of(50, 0, 0)
    d.submit_range(lba=lba, nblocks=1)
    eng.run()
    assert d.head_cylinder == 50


def test_fcfs_services_in_submission_order():
    eng = Engine()
    d = make_disk(eng, scheduler="fcfs")
    far = d.submit_range(lba=SMALL_GEO.lba_of(99, 0, 0), nblocks=1)
    near = d.submit_range(lba=0, nblocks=1)
    eng.run()
    assert far.value.completed_at < near.value.completed_at


def test_sstf_services_nearest_first():
    eng = Engine()
    # Occupy the arm briefly so both test requests are queued together.
    d = make_disk(eng, scheduler="sstf")
    d.submit_range(lba=0, nblocks=1)
    far = d.submit_range(lba=SMALL_GEO.lba_of(99, 0, 0), nblocks=1)
    near = d.submit_range(lba=SMALL_GEO.lba_of(1, 0, 0), nblocks=1)
    eng.run()
    assert near.value.completed_at < far.value.completed_at


def test_out_of_range_request_rejected():
    eng = Engine()
    d = make_disk(eng)
    with pytest.raises(DiskError):
        d.submit_range(lba=SMALL_GEO.total_blocks - 1, nblocks=2)


def test_double_submission_rejected():
    eng = Engine()
    d = make_disk(eng)
    req = IORequest(lba=0, nblocks=1)
    d.submit(req)
    with pytest.raises(DiskError):
        d.submit(req)


def test_statistics_accumulate():
    eng = Engine()
    d = make_disk(eng)
    d.submit_range(lba=0, nblocks=4, is_write=False)
    d.submit_range(lba=8, nblocks=2, is_write=True)
    eng.run()
    assert d.requests_completed.value == 2
    assert d.bytes_read.value == 4 * 512
    assert d.bytes_written.value == 2 * 512
    assert d.service_times.count == 2
    assert d.response_times.count == 2


def test_queued_request_response_includes_waiting():
    eng = Engine()
    d = make_disk(eng)
    a = d.submit_range(lba=0, nblocks=1)
    b = d.submit_range(lba=0, nblocks=1)
    eng.run()
    assert b.value.response_time > b.value.service_time
    assert a.value.response_time == pytest.approx(a.value.service_time)


def test_nondeterministic_rotation_uses_rng():
    import numpy as np

    eng = Engine()
    rng = np.random.default_rng(7)
    d = make_disk(eng, params=DiskParams(deterministic=False), rng=rng)
    samples = {d.rotational_latency() for _ in range(8)}
    assert len(samples) > 1
    assert all(0.0 <= s <= d.params.revolution_time for s in samples)


def test_deterministic_rotation_constant():
    eng = Engine()
    d = make_disk(eng)
    assert d.rotational_latency() == d.rotational_latency()


def test_disk_reusable_after_idle():
    """The arm must wake again after draining its queue once."""
    eng = Engine()
    d = make_disk(eng)
    first = d.submit_range(lba=0, nblocks=1)
    eng.run()
    assert first.value.completed_at is not None
    second = d.submit_range(lba=16, nblocks=1)
    eng.run()
    assert second.value.completed_at > first.value.completed_at

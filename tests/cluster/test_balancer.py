"""LoadBalancer: routing policies, health probing, eject/readmit."""

import pytest

from repro.cluster import BalancerConfig, ClusterConfig, FileCluster
from repro.errors import ClusterError


def _cluster(**overrides):
    defaults = dict(nodes=3, replication=2, num_keys=8)
    defaults.update(overrides)
    return FileCluster(ClusterConfig(**defaults))


def test_balancer_config_validates():
    with pytest.raises(ClusterError):
        BalancerConfig(policy="random")
    with pytest.raises(ClusterError):
        BalancerConfig(replication=0)
    with pytest.raises(ClusterError):
        BalancerConfig(probe_interval=0.0)
    with pytest.raises(ClusterError):
        BalancerConfig(eject_after=0)
    with pytest.raises(ClusterError):
        ClusterConfig(nodes=2, replication=3)


def test_write_targets_are_all_admitted_replicas():
    cluster = _cluster()
    balancer = cluster.balancer
    key = cluster.keys[0]
    assert balancer.write_targets(key) == balancer.replicas(key)
    assert len(balancer.replicas(key)) == 2


def test_consistent_policy_reads_ring_order():
    cluster = _cluster(policy="consistent")
    balancer = cluster.balancer
    key = cluster.keys[0]
    order = balancer.replicas(key)
    for _ in range(3):
        assert balancer.read_order(key) == order


def test_round_robin_policy_rotates_start():
    cluster = _cluster(policy="round_robin")
    balancer = cluster.balancer
    key = cluster.keys[0]
    first = balancer.read_order(key)
    second = balancer.read_order(key)
    assert sorted(first) == sorted(second)
    assert first != second  # rotated start replica


def test_least_conn_policy_prefers_idle_node():
    cluster = _cluster(policy="least_conn")
    balancer = cluster.balancer
    key = cluster.keys[0]
    a, b = balancer.replicas(key)
    balancer.note_dispatch(a)
    balancer.note_dispatch(a)
    assert balancer.read_order(key)[0] == b
    balancer.note_done(a)
    balancer.note_done(a)
    balancer.note_dispatch(b)
    assert balancer.read_order(key)[0] == a


def test_probes_eject_after_streak_and_readmit_after_recovery():
    cluster = _cluster(eject_after=3, readmit_after=2, probe_interval=0.01)
    engine = cluster.engine
    balancer = cluster.balancer
    node = cluster.nodes["node-1"]

    def driver():
        node.crash(reason="test")
        # 3 failed probes at 10 ms cadence eject; give one spare round.
        yield engine.timeout(0.045)
        assert not balancer.is_admitted("node-1")
        assert not balancer.is_in_sync("node-1")
        assert "node-1" not in balancer.healthy_nodes()
        node.recover()
        yield engine.timeout(0.045)
        assert balancer.is_admitted("node-1")
        return True

    assert engine.run_process(driver())
    # The repair agent ran at readmit and restored read eligibility.
    assert balancer.is_in_sync("node-1")
    assert balancer.ejections["node-1"].value == 1


def test_ejected_replica_leaves_read_and_write_paths():
    cluster = _cluster()
    balancer = cluster.balancer
    key = cluster.keys[0]
    victim = balancer.replicas(key)[0]
    balancer._eject(victim)
    assert victim not in balancer.write_targets(key)
    assert victim not in balancer.read_order(key)
    assert not balancer.is_fully_replicated(key)


def test_readmit_without_repair_hook_trusts_node():
    """Standalone balancers (no cluster repair agent) restore in_sync
    directly on readmit."""
    cluster = _cluster()
    balancer = cluster.balancer
    balancer.on_readmit = None
    balancer._eject("node-0")
    balancer._readmit("node-0")
    assert balancer.is_in_sync("node-0")

"""Consistent-hash ring: placement determinism and replica math."""

import pytest

from repro.cluster import HashRing, stable_hash
from repro.errors import ClusterError

NODES = ["node-0", "node-1", "node-2", "node-3", "node-4"]


def test_stable_hash_is_deterministic_and_32bit():
    assert stable_hash("/k0001") == stable_hash("/k0001")
    assert 0 <= stable_hash("anything") < 2 ** 32
    assert stable_hash("a") != stable_hash("b")


def test_construction_validates():
    with pytest.raises(ClusterError):
        HashRing([])
    with pytest.raises(ClusterError):
        HashRing(["a", "a"])
    with pytest.raises(ClusterError):
        HashRing(["a"], virtual_nodes=0)


def test_placement_is_insertion_order_independent():
    a = HashRing(NODES)
    b = HashRing(list(reversed(NODES)))
    for i in range(50):
        key = f"/k{i:04d}"
        assert a.replicas_for(key, 3) == b.replicas_for(key, 3)


def test_replicas_are_distinct_and_primary_first():
    ring = HashRing(NODES)
    for i in range(50):
        key = f"/k{i:04d}"
        replicas = ring.replicas_for(key, 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert replicas[0] == ring.primary(key)
        # Growing R extends the set without reshuffling the prefix.
        assert ring.replicas_for(key, 2) == replicas[:2]


def test_replication_bounds_validated():
    ring = HashRing(NODES[:3])
    with pytest.raises(ClusterError):
        ring.replicas_for("/k", 0)
    with pytest.raises(ClusterError):
        ring.replicas_for("/k", 4)


def test_membership_change_moves_only_adjacent_keys():
    """Dropping one node must not move keys between surviving nodes —
    the consistency property that bounds re-replication traffic."""
    keys = [f"/k{i:04d}" for i in range(200)]
    full = HashRing(NODES)
    without = HashRing([n for n in NODES if n != "node-2"])
    for key in keys:
        before = full.primary(key)
        after = without.primary(key)
        if before != "node-2":
            assert after == before


def test_share_of_is_roughly_balanced():
    ring = HashRing(NODES, virtual_nodes=128)
    keys = [f"/k{i:04d}" for i in range(400)]
    for node in NODES:
        share = ring.share_of(node, keys, r=2)
        # Fair share is 2/5 = 0.4; virtual nodes keep the skew bounded.
        assert 0.2 < share < 0.6
    assert ring.share_of("node-0", [], r=2) == 0.0

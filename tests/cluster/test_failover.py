"""End-to-end cluster robustness: crash, partition, re-replication,
durability, and determinism."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterWorkload,
    ClusterWorkloadConfig,
    FileCluster,
)
from repro.errors import NoReplicasAvailable
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Tracer


def _crash_plan(kind="node.crash", target="node-1", start=0.08, end=0.20,
                seed=5):
    return FaultPlan(seed=seed, specs=(
        FaultSpec(kind=kind, target=target, start=start, end=end),
    ))


def _run(kind="node.crash", policy="round_robin", nodes=3, replication=2,
         seed=5, requests=150, tracer=None, start=0.08, end=0.20,
         get_fraction=0.6):
    cluster = FileCluster(ClusterConfig(
        nodes=nodes, replication=replication, policy=policy,
        num_keys=16, seed=seed,
        fault_plan=_crash_plan(kind=kind, seed=seed, start=start, end=end),
        tracer=tracer,
    ))
    workload = ClusterWorkload(cluster, ClusterWorkloadConfig(
        requests=requests, arrival_rate=500.0, seed=seed,
        get_fraction=get_fraction,
    ))
    return cluster, workload.run()


def test_bootstrap_places_every_key_on_r_replicas():
    cluster = FileCluster(ClusterConfig(nodes=3, replication=2, num_keys=12))
    for key in cluster.keys:
        replicas = cluster.log.replicas_of(key)
        assert len(replicas) == 2
        for name in replicas:
            assert cluster.nodes[name].stored_size(key) == \
                cluster.log.expected_size(key)
        # Non-replicas hold nothing.
        for name in set(cluster.nodes) - set(replicas):
            assert cluster.nodes[name].stored_size(key) is None


def test_replicated_put_lands_on_every_replica():
    cluster = FileCluster(ClusterConfig(nodes=3, replication=2, num_keys=4))
    client = cluster.client()
    key = cluster.keys[0]
    size = cluster.engine.run_process(client.put(key))
    assert cluster.log.acked_version(key) == 1
    assert cluster.log.expected_size(key) == size
    for name in cluster.log.replicas_of(key):
        assert cluster.nodes[name].stored_size(key) == size


def test_crash_survives_with_zero_lost_acked_writes():
    cluster, result = _run(kind="node.crash")
    assert result.completed == result.attempted  # nothing aborted
    assert result.ejections >= 1
    assert result.failovers >= 1
    assert result.degraded > 0
    durability = cluster.verify_durability()
    assert durability["lost_acked_writes"] == 0, durability["lost"]
    assert cluster.log.acked_writes > 0
    # The crashed member came back, rebuilt, and serves reads again.
    node = cluster.nodes["node-1"]
    assert node.is_up and node.crashes.value == 1
    assert cluster.balancer.is_in_sync("node-1")
    assert node.rebuild_progress == 1.0


def test_partition_heals_with_zero_lost_acked_writes():
    cluster, result = _run(kind="node.partition", policy="consistent")
    assert cluster.verify_durability()["lost_acked_writes"] == 0
    node = cluster.nodes["node-1"]
    assert node.is_up and node.is_reachable
    assert node.crashes.value == 0  # partition is not a crash
    assert result.ejections >= 1
    assert cluster.balancer.is_in_sync("node-1")


def test_rejoined_node_rebuilds_stale_shards():
    """Writes accepted while a member is down must be re-replicated to
    it before it serves reads — and after rebuild its copies match the
    log exactly."""
    cluster, result = _run(kind="node.crash", seed=9, requests=200)
    assert cluster.verify_durability()["lost_acked_writes"] == 0
    node = cluster.nodes["node-1"]
    for key in cluster.log.keys():
        if "node-1" in cluster.log.replicas_of(key):
            assert node.stored_size(key) == cluster.log.expected_size(key)


def test_cluster_point_events_reach_the_tracer():
    tracer = Tracer()
    _cluster, _result = _run(kind="node.crash", tracer=tracer)
    names = {e.name for e in tracer.events}
    assert {"node.down", "node.up", "lb.eject", "lb.readmit"} <= names
    downs = [e for e in tracer.events if e.name == "node.down"]
    assert downs[0].attrs["node"] == "node-1"
    assert downs[0].attrs["kind"] == "crash"


def test_same_seed_runs_are_identical():
    def signature():
        cluster, result = _run(kind="node.crash", policy="least_conn")
        return (
            result.completed, result.aborted, result.failovers,
            result.retries, result.ejections, result.rebuilt_keys,
            result.degraded, result.duration,
            tuple(sorted(result.served_by_node.items())),
            tuple(result.latencies.values),
            cluster.log.acked_writes,
        )

    assert signature() == signature()


def test_write_in_flight_across_readmit_reaches_rejoined_replica():
    """A PUT that picked its targets while a replica was ejected, but
    commits after that replica's readmit + rebuild scan, must re-read
    the admitted set and write to the rejoined node too — otherwise it
    would be marked in-sync while missing acked bytes.  Seed 9 with
    this mix hit exactly that interleaving before the fix."""
    cluster, result = _run(kind="node.crash", seed=9, requests=200,
                           start=0.10, end=0.22, get_fraction=0.7)
    assert result.completed == result.attempted
    durability = cluster.verify_durability()
    assert durability["lost_acked_writes"] == 0, durability["lost"]
    # Every in-sync replica really holds the acked bytes.
    for key in cluster.log.keys():
        for name in cluster.log.replicas_of(key):
            if cluster.balancer.is_in_sync(name):
                assert cluster.nodes[name].stored_size(key) == \
                    cluster.log.expected_size(key)


def test_accept_loop_survives_crash_timestamp_race():
    """Seed 1 delivers a connection to the accept loop at the crash
    timestamp: the loop re-enters accept_socket() on the stopped
    listener and must park (not die), or the rejoined node never
    serves again and the run deadlocks."""
    cluster, result = _run(kind="node.crash", seed=1, requests=200,
                           start=0.10, end=0.22, get_fraction=0.7)
    assert result.completed == result.attempted
    assert cluster.nodes["node-1"].server.listener.pending == 0
    assert cluster.verify_durability()["lost_acked_writes"] == 0


def test_all_replicas_down_aborts_instead_of_hanging():
    cluster = FileCluster(ClusterConfig(nodes=2, replication=2, num_keys=4))
    for node in cluster.nodes.values():
        node.crash(reason="total outage")
    # Let probes eject everyone.
    cluster.engine.run_process(_sleep(cluster.engine, 0.2))
    client = cluster.client()
    with pytest.raises(NoReplicasAvailable):
        cluster.engine.run_process(client.get(cluster.keys[0]))
    with pytest.raises(NoReplicasAvailable):
        cluster.engine.run_process(client.put(cluster.keys[0]))
    assert cluster.verify_durability()["checked"] == 4


def _sleep(engine, delay):
    yield engine.timeout(delay)

"""Tests for the experiment result container and renderers."""

import pytest

from repro.bench.report import ExperimentResult, render_report, render_series, render_table
from repro.errors import BenchmarkError


def make_result():
    return ExperimentResult(
        exp_id="demo",
        title="A demo table",
        columns=("name", "value_ms"),
        rows=[("alpha", 1.5), ("beta", 0.000123)],
        notes=["a note"],
    )


def test_row_width_validated():
    with pytest.raises(BenchmarkError):
        ExperimentResult("x", "t", ("a", "b"), rows=[(1,)])


def test_column_access():
    r = make_result()
    assert r.column("name") == ["alpha", "beta"]
    assert r.column("value_ms") == [1.5, 0.000123]
    with pytest.raises(BenchmarkError):
        r.column("missing")


def test_render_table_contains_everything():
    text = render_table(make_result())
    assert "demo" in text
    assert "A demo table" in text
    assert "alpha" in text
    assert "1.5" in text
    assert "1.230e-04" in text  # scientific notation for tiny values
    assert "note: a note" in text
    # Aligned columns: every data line has the separator.
    data_lines = [l for l in text.splitlines() if "|" in l]
    assert len(data_lines) == 3  # header + 2 rows


def test_result_render_shortcut():
    r = make_result()
    assert r.render() == render_table(r)


def test_render_report_concatenates():
    text = render_report([make_result(), make_result()])
    assert text.count("A demo table") == 2


def test_render_series():
    text = render_series([1, 2, 4], [0.5, 1.0, 2.0], width=10, label="speedup")
    assert "speedup" in text
    lines = text.splitlines()[1:]
    assert len(lines) == 3
    # Bars scale with the values.
    assert lines[2].count("#") > lines[0].count("#")


def test_render_series_validation():
    with pytest.raises(BenchmarkError):
        render_series([1, 2], [1.0])
    with pytest.raises(BenchmarkError):
        render_series([], [])


def test_render_series_zero_values():
    text = render_series([1], [0.0])
    assert "0" in text


def test_to_dict_from_dict_roundtrip():
    r = make_result()
    data = r.to_dict()
    rebuilt = ExperimentResult.from_dict(data)
    assert rebuilt.exp_id == r.exp_id
    assert rebuilt.title == r.title
    assert list(rebuilt.columns) == list(r.columns)
    assert [list(row) for row in rebuilt.rows] == [list(row) for row in r.rows]
    assert rebuilt.notes == r.notes
    import json

    json.dumps(data)  # must be JSON-serializable as-is


def test_main_output_and_json_flags(tmp_path, capsys):
    from repro.bench.__main__ import main

    out_txt = tmp_path / "report.txt"
    out_json = tmp_path / "results.json"
    assert main(["tab6", "--output", str(out_txt), "--json", str(out_json)]) == 0
    capsys.readouterr()
    assert "tab6" in out_txt.read_text()
    import json

    data = json.loads(out_json.read_text())
    assert data[0]["exp_id"] == "tab6"
    assert "wall_seconds" in data[0]

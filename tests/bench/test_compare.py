"""Tests for the regression comparator."""

import json

import pytest

from repro.bench.compare import Drift, compare_results, load_dump, main
from repro.bench.report import ExperimentResult
from repro.errors import BenchmarkError


def result(exp_id="e1", rows=None):
    return ExperimentResult(
        exp_id=exp_id,
        title="t",
        columns=("key", "value_ms"),
        rows=rows if rows is not None else [("a", 1.0), ("b", 2.0)],
    )


def test_no_drift_when_identical():
    a = {"e1": result()}
    b = {"e1": result()}
    assert compare_results(a, b) == []


def test_drift_beyond_tolerance_reported():
    a = {"e1": result(rows=[("a", 1.0)])}
    b = {"e1": result(rows=[("a", 1.2)])}
    drifts = compare_results(a, b, tolerance=0.1)
    assert len(drifts) == 1
    d = drifts[0]
    assert d.exp_id == "e1" and d.row_key == "a" and d.column == "value_ms"
    assert d.relative == pytest.approx(0.2)
    assert "->" in d.render()


def test_drift_within_tolerance_ignored():
    a = {"e1": result(rows=[("a", 1.0)])}
    b = {"e1": result(rows=[("a", 1.04)])}
    assert compare_results(a, b, tolerance=0.05) == []


def test_missing_experiment_and_row_are_structural_drifts():
    a = {"e1": result(), "e2": result("e2")}
    b = {"e1": result(rows=[("a", 1.0)])}
    drifts = compare_results(a, b)
    kinds = {(d.exp_id, d.column) for d in drifts}
    assert ("e2", "<presence>") in kinds
    assert ("e1", "<row>") in kinds


def test_non_numeric_cells_ignored():
    a = {"e1": ExperimentResult("e1", "t", ("key", "label"), [("a", "x")])}
    b = {"e1": ExperimentResult("e1", "t", ("key", "label"), [("a", "y")])}
    assert compare_results(a, b) == []


def test_tolerance_validation():
    with pytest.raises(BenchmarkError):
        compare_results({}, {}, tolerance=-1)


def test_load_dump_and_cli(tmp_path, capsys):
    before = [result(rows=[("a", 1.0)]).to_dict()]
    after = [result(rows=[("a", 5.0)]).to_dict()]
    pb = tmp_path / "before.json"
    pa = tmp_path / "after.json"
    pb.write_text(json.dumps(before))
    pa.write_text(json.dumps(after))

    loaded = load_dump(str(pb))
    assert "e1" in loaded

    assert main([str(pb), str(pa)]) == 1
    out = capsys.readouterr().out
    assert "drift" in out

    assert main([str(pb), str(pb)]) == 0
    assert "no drift" in capsys.readouterr().out


def test_load_dump_rejects_non_list(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"not": "a list"}))
    with pytest.raises(BenchmarkError):
        load_dump(str(p))


def test_self_comparison_of_real_dump_is_clean(tmp_path, capsys):
    """A real harness dump compared against itself shows zero drift —
    end-to-end determinism of the whole pipeline."""
    from repro.bench.__main__ import main as bench_main

    p = tmp_path / "dump.json"
    bench_main(["tab4", "ext_eviction", "--json", str(p)])
    capsys.readouterr()
    assert main([str(p), str(p), "--tolerance", "0.0"]) == 0

"""Tests for the experiment registry and the fast experiments.

(The slower figure experiments are exercised end-to-end by the
benchmarks/ suite; here we cover registry behaviour and the cheap
table experiments' structure.)
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, run_experiment
from repro.bench.experiments.extensions import run_ext_comm, run_ext_vm
from repro.bench.experiments.tab5_tab6_webserver import run_tab5, run_tab6
from repro.bench.experiments.tables_traces import run_tab3, run_tab4
from repro.errors import BenchmarkError


def test_registry_covers_every_paper_artifact():
    # Figures 2-6 (fig6 is tab6's plot) and Tables 1-6.
    for exp in ("fig2", "fig3", "fig4", "fig5",
                "tab1", "tab2", "tab3", "tab4", "tab5", "tab6"):
        assert exp in ALL_EXPERIMENTS, exp


def test_registry_covers_every_extension():
    for exp in ("ext_prefetch", "ext_scheduler", "ext_vm", "ext_comm",
                "ext_cil", "ext_dist", "ext_eviction", "ext_pgrep"):
        assert exp in ALL_EXPERIMENTS, exp


def test_ext_pgrep_structure():
    from repro.bench.experiments.extensions import run_ext_pgrep

    result = run_ext_pgrep()
    modes = result.column("mode")
    assert modes == ["sequential-fcfs", "concurrent-fcfs", "concurrent-sstf"]
    streams = dict(zip(modes, result.column("streams")))
    assert streams["sequential-fcfs"] == 1
    assert streams["concurrent-fcfs"] == 4
    # Queueing inflates concurrent per-read response.
    reads = dict(zip(modes, result.column("read_ms")))
    assert reads["concurrent-fcfs"] > 2 * reads["sequential-fcfs"]
    # close > open everywhere.
    for open_ms, close_ms in zip(result.column("open_ms"), result.column("close_ms")):
        assert close_ms > open_ms


def test_unknown_experiment_rejected():
    with pytest.raises(BenchmarkError):
        run_experiment("fig99")


def test_tab3_structure():
    result = run_tab3()
    assert result.exp_id == "tab3"
    assert len(result.rows) == 6
    assert result.column("data_size_bytes")[0] == 66617088


def test_tab4_structure():
    result = run_tab4()
    assert len(result.rows) == 16
    # Paper comparison column present for every row.
    assert all(row[-1] is not None for row in result.rows)


def test_tab5_structure():
    result = run_tab5()
    assert len(result.rows) == 3
    assert result.column("data_size_bytes") == [7501, 50607, 14063]


def test_tab6_structure_and_custom_trials():
    result = run_tab6(trials=4)
    assert len(result.rows) == 4
    assert result.column("trial") == [1, 2, 3, 4]
    # Beyond the published 6 trials, the paper column is None.
    longer = run_tab6(trials=8)
    assert longer.rows[-1][-1] is None


def test_ext_vm_covers_all_profiles():
    from repro.cli.profiles import VM_PROFILES

    result = run_ext_vm(trials=3)
    assert sorted(result.column("vm_profile")) == sorted(VM_PROFILES)
    for ratio in result.column("warmup_ratio"):
        assert ratio > 1.0


def test_ext_comm_measured_tracks_model():
    result = run_ext_comm()
    model = result.rows[0]
    measured = result.rows[1]
    for m, s in zip(model[1:], measured[1:]):
        assert s == pytest.approx(m, rel=0.15)


def test_main_module_runs_a_cheap_subset(capsys):
    from repro.bench.__main__ import main

    assert main(["tab4"]) == 0
    out = capsys.readouterr().out
    assert "tab4" in out
    assert "Cholesky" in out


def test_ext_arch_structure_and_memory_proxy():
    from repro.bench.experiments.arch import run_ext_arch

    result = run_ext_arch(total_requests=64)
    assert result.exp_id == "ext_arch"
    scenarios = result.column("scenario")
    # 3 concurrency levels x 2 architectures x {clean, faults}.
    assert len(scenarios) == 12
    assert "thread-c16" in scenarios and "eventloop-c16-faults" in scenarios
    rows = dict(zip(scenarios, result.rows))
    # Memory proxy: threaded grows with concurrency, event loop pinned at 1.
    peak = dict(zip(scenarios, result.column("peak_processes")))
    assert peak["thread-c64"] == 65
    assert peak["eventloop-c64"] == 1
    assert peak["thread-c4"] < peak["thread-c64"]
    # Clean rows complete every request with no retries.
    assert rows["thread-c4"][result.columns.index("retries")] == 0
    # Faulted rows exercised the client retry path identically.
    thread_retries = rows["thread-c16-faults"][result.columns.index("retries")]
    event_retries = rows["eventloop-c16-faults"][result.columns.index("retries")]
    assert thread_retries > 0
    assert thread_retries == event_retries

"""Tests for the parallel bench runner and the ext_scale experiment."""

import json

import pytest

from repro.bench.experiments.scale import run_ext_scale
from repro.bench.parallel import run_experiments_parallel, run_one
from repro.errors import BenchmarkError

#: Small fast experiments used to exercise the cross-process path.
_FAST = ["tab1", "fig2"]


def test_run_one_roundtrip():
    exp_id, payload, elapsed = run_one("tab1")
    assert exp_id == "tab1"
    assert payload["exp_id"] == "tab1"
    assert payload["rows"]
    assert elapsed > 0


def test_parallel_matches_serial():
    """--jobs output must be byte-identical to serial (wall aside)."""
    serial = [run_one(e) for e in _FAST]
    parallel = run_experiments_parallel(_FAST, jobs=2)
    assert len(parallel) == len(serial)
    for (sid, sdump, _), (presult, _) in zip(serial, parallel):
        assert presult.exp_id == sid
        assert json.dumps(presult.to_dict(), sort_keys=True) == \
            json.dumps(sdump, sort_keys=True)


def test_parallel_preserves_request_order():
    ordered = run_experiments_parallel(list(reversed(_FAST)), jobs=2)
    assert [r.exp_id for r, _ in ordered] == list(reversed(_FAST))


def test_parallel_rejects_bad_jobs():
    with pytest.raises(BenchmarkError, match="jobs"):
        run_experiments_parallel(_FAST, jobs=0)


def test_profile_dump_written(tmp_path):
    run_one("tab1", profile_dir=str(tmp_path))
    assert (tmp_path / "tab1.pstats").exists()


def test_bench_main_jobs_byte_identical(tmp_path):
    from repro.bench.__main__ import main

    serial_json = tmp_path / "serial.json"
    par_json = tmp_path / "par.json"
    serial_base = tmp_path / "serial_base.json"
    par_base = tmp_path / "par_base.json"
    assert main(_FAST + ["--json", str(serial_json),
                         "--baseline-out", str(serial_base)]) == 0
    assert main(_FAST + ["--jobs", "4", "--json", str(par_json),
                         "--baseline-out", str(par_base)]) == 0

    def strip_wall(path):
        doc = json.loads(path.read_text())
        return [{k: v for k, v in e.items() if k != "wall_seconds"}
                for e in doc]

    assert strip_wall(serial_json) == strip_wall(par_json)
    a = json.loads(serial_base.read_text())
    b = json.loads(par_base.read_text())
    assert a["experiments"] == b["experiments"]


def test_bench_main_wallclock_append(tmp_path):
    from repro.bench.__main__ import main

    trajectory = tmp_path / "wall.jsonl"
    assert main(["tab1", "--wallclock-append", str(trajectory)]) == 0
    assert main(["tab1", "--wallclock-append", str(trajectory)]) == 0
    lines = trajectory.read_text().splitlines()
    assert len(lines) == 2
    entry = json.loads(lines[0])
    assert "tab1" in entry["experiments"]
    assert entry["total_wall_seconds"] >= entry["experiments"]["tab1"]


# ---------------------------------------------------------------------------
# ext_scale
# ---------------------------------------------------------------------------

def _small_scale():
    return run_ext_scale(scale=1, web_clients=2, web_requests=20,
                         kernel_n=40)


def test_ext_scale_smoke():
    result = _small_scale()
    assert result.exp_id == "ext_scale"
    phases = [row[0] for row in result.rows]
    assert phases == ["dmine_replay_x1", "webserver_20req",
                      "cil_kernels_n40"]
    for row in result.rows:
        assert row[1] > 0  # operations
        assert row[2] > 0  # instructions
        assert row[4] > 0  # simulated seconds


def test_ext_scale_deterministic():
    assert _small_scale().rows == _small_scale().rows


def test_ext_scale_rejects_uneven_split():
    with pytest.raises(ValueError, match="divide evenly"):
        run_ext_scale(scale=1, web_clients=3, web_requests=20, kernel_n=40)

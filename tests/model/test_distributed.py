"""Tests for the distributed communication fabrics."""

import pytest

from repro.errors import ModelError
from repro.model import (
    Application,
    ApplicationExecutor,
    CLUSTER_LINK,
    FabricConfig,
    MachineConfig,
    PointToPointFabric,
    Program,
    WAN_LINK,
    WorkingSet,
    distributed_machine,
)
from repro.sim import Engine


def comm_app(nprogs=3, gamma=0.8, total=1.0):
    progs = [
        Program(f"p{i}", [WorkingSet(0.0, gamma, 1.0, 1)], total)
        for i in range(nprogs)
    ]
    return Application("comm-app", progs)


def test_fabric_config_validation():
    with pytest.raises(ModelError):
        FabricConfig(pattern="starfish")
    with pytest.raises(ModelError):
        FabricConfig(link_bandwidth=0)
    with pytest.raises(ModelError):
        FabricConfig(link_latency=-1)
    with pytest.raises(ModelError):
        FabricConfig(chunk=0)


def test_fabric_link_management():
    eng = Engine()
    fabric = PointToPointFabric(eng, 4, FabricConfig())
    a = fabric.link(0, 1)
    assert fabric.link(0, 1) is a          # cached
    assert fabric.link(1, 0) is not a      # directed
    assert fabric.links_created == 2
    with pytest.raises(ModelError):
        fabric.link(0, 0)
    with pytest.raises(ModelError):
        fabric.link(0, 9)
    with pytest.raises(ModelError):
        PointToPointFabric(eng, 0, FabricConfig())


@pytest.mark.parametrize("pattern", ["ring", "all", "master"])
def test_patterns_complete_and_move_bytes(pattern):
    eng = Engine()
    fabric = PointToPointFabric(eng, 3, FabricConfig(pattern=pattern))

    def burst(node):
        yield from fabric.transmit(node, 1_000_000)

    for node in range(3):
        eng.process(burst(node))
    eng.run()
    total = sum(ch.bytes_sent for ch in fabric._links.values())
    assert total > 0
    if pattern == "ring":
        # Exactly one outgoing link per node, full burst each.
        assert fabric.links_created == 3
        assert total == 3 * 1_000_000


def test_single_node_fabric_is_loopback():
    eng = Engine()
    fabric = PointToPointFabric(eng, 1, FabricConfig())

    def burst():
        yield from fabric.transmit(0, 10_000_000)

    eng.process(burst())
    eng.run()
    assert fabric.links_created == 0
    assert eng.now == pytest.approx(10_000_000 / CLUSTER_LINK[0])


def test_dedicated_links_beat_shared_switch_under_contention():
    """Three comm-heavy programs: the shared channel serializes their
    bursts, a point-to-point ring lets them overlap."""
    app = comm_app(nprogs=3, gamma=1.0, total=1.0)
    shared = ApplicationExecutor(app, MachineConfig()).run()
    ring = ApplicationExecutor(app, distributed_machine(pattern="ring")).run()
    assert ring.makespan < 0.6 * shared.makespan


def test_wan_links_slow_communication_down():
    app = comm_app(nprogs=3, gamma=1.0, total=0.2)
    lan = ApplicationExecutor(app, distributed_machine(link=CLUSTER_LINK)).run()
    wan = ApplicationExecutor(app, distributed_machine(link=WAN_LINK)).run()
    assert wan.makespan > 3 * lan.makespan


def test_all_pattern_splits_burst_across_peers():
    eng = Engine()
    fabric = PointToPointFabric(eng, 5, FabricConfig(pattern="all"))

    def burst():
        yield from fabric.transmit(2, 4_000_000)

    eng.process(burst())
    eng.run()
    # Four peers, one outgoing link each, equal shares.
    assert fabric.links_created == 4
    shares = {ch.bytes_sent for ch in fabric._links.values()}
    assert shares == {1_000_000}


def test_master_pattern_directions():
    eng = Engine()
    fabric = PointToPointFabric(eng, 3, FabricConfig(pattern="master"))

    def worker(node):
        yield from fabric.transmit(node, 1000)

    def master():
        yield from fabric.transmit(0, 1000)

    eng.process(worker(1))
    eng.process(worker(2))
    eng.process(master())
    eng.run()
    keys = set(fabric._links)
    assert (1, 0) in keys and (2, 0) in keys       # workers → master
    assert (0, 1) in keys and (0, 2) in keys       # broadcast


def test_distributed_machine_preserves_other_settings():
    base = MachineConfig(cpus=4, disks=2)
    machine = distributed_machine(base, pattern="all")
    assert machine.cpus == 4
    assert machine.disks == 2
    assert machine.fabric_factory is not None


def test_io_only_app_unaffected_by_fabric_choice():
    app = Application(
        "io-app", [Program("p", [WorkingSet(0.9, 0.0, 1.0, 2)], 0.5)]
    )
    shared = ApplicationExecutor(app, MachineConfig()).run()
    dist = ApplicationExecutor(app, distributed_machine(link=WAN_LINK)).run()
    assert dist.makespan == pytest.approx(shared.makespan)

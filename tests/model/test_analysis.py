"""Tests for the closed-form model predictions."""

import pytest

from repro.errors import ModelError
from repro.model import (
    Application,
    ApplicationExecutor,
    MachineConfig,
    Program,
    WorkingSet,
    build_qcrd,
    cpu_speedup_study,
    disk_speedup_study,
    predict_application_time,
    predict_program_time,
    predict_speedup,
    speedup_bound,
)


def simple_program(phi=0.5, gamma=0.0, total=10.0, name="p"):
    return Program(name, [WorkingSet(phi, gamma, 1.0, 1)], total)


def test_predict_program_time_formula():
    p = simple_program(phi=0.4, gamma=0.1, total=10.0)
    # R_CPU=5, R_Disk=4, R_COM=1.
    assert predict_program_time(p, cpus=1, disks=1) == pytest.approx(10.0)
    assert predict_program_time(p, cpus=5, disks=2) == pytest.approx(1 + 2 + 1)
    with pytest.raises(ModelError):
        predict_program_time(p, cpus=0)


def test_predict_application_is_max_over_programs():
    app = Application(
        "a", [simple_program(total=10.0, name="x"), simple_program(total=30.0, name="y")]
    )
    assert predict_application_time(app) == pytest.approx(30.0)


def test_predict_speedup_curve():
    app = Application("a", [simple_program(phi=0.5, total=10.0)])
    s = predict_speedup(app, "cpus", counts=(2, 4))
    assert s[1] == 1.0
    # T(P)=5/P+5 → s(2)=10/7.5, s(4)=10/6.25
    assert s[2] == pytest.approx(10 / 7.5)
    assert s[4] == pytest.approx(10 / 6.25)
    with pytest.raises(ModelError):
        predict_speedup(app, "gpus", counts=(2,))


def test_speedup_bound():
    app = Application("a", [simple_program(phi=0.5, total=10.0)])
    assert speedup_bound(app, "cpus") == pytest.approx(2.0)
    assert speedup_bound(app, "disks") == pytest.approx(2.0)
    pure_cpu = Application("b", [simple_program(phi=0.0, total=10.0)])
    with pytest.raises(ModelError):
        speedup_bound(pure_cpu, "cpus")  # unbounded


def test_qcrd_bounds_match_paper_story():
    app = build_qcrd()
    # Disks barely help; CPUs help until ~2.4.
    assert speedup_bound(app, "disks") < 1.35
    assert 2.0 < speedup_bound(app, "cpus") < 2.6


def test_simulation_tracks_prediction_within_tolerance():
    """The validation the paper does against the real QCRD: simulated
    speedups within ~10% of the model's closed form."""
    app = build_qcrd()
    counts = (2, 8)
    for resource, study in (
        ("disks", disk_speedup_study),
        ("cpus", cpu_speedup_study),
    ):
        simulated = study(app, counts=counts)
        predicted = predict_speedup(app, resource, counts)
        for n in counts:
            assert simulated[n] == pytest.approx(predicted[n], rel=0.10), (
                resource,
                n,
            )


def test_prediction_monotone_in_resources():
    app = build_qcrd()
    for resource in ("cpus", "disks"):
        s = predict_speedup(app, resource, counts=(2, 4, 8, 16, 32))
        values = [s[n] for n in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values)
        assert values[-1] <= speedup_bound(app, resource) + 1e-9

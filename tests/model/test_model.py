"""Tests for Phase / WorkingSet / Program / Application."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.model import Application, Phase, Program, WorkingSet


# ---------------------------------------------------------------------------
# Phase (Eq. 1)
# ---------------------------------------------------------------------------

def test_phase_decomposition():
    p = Phase(io_fraction=0.3, comm_fraction=0.2, duration=10.0)
    assert p.cpu_fraction == pytest.approx(0.5)
    assert p.io_time == pytest.approx(3.0)
    assert p.comm_time == pytest.approx(2.0)
    assert p.cpu_time == pytest.approx(5.0)
    # Eq. 1: T = T_CPU + T_COM + T_Disk.
    assert p.cpu_time + p.comm_time + p.io_time == pytest.approx(p.duration)


def test_phase_validation():
    with pytest.raises(ModelError):
        Phase(-0.1, 0.0, 1.0)
    with pytest.raises(ModelError):
        Phase(0.0, 1.1, 1.0)
    with pytest.raises(ModelError):
        Phase(0.6, 0.6, 1.0)  # φ + γ > 1
    with pytest.raises(ModelError):
        Phase(0.1, 0.1, 0.0)


@given(
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=1e-6, max_value=1e6),
)
def test_phase_decomposition_property(phi, gamma, duration):
    if phi + gamma > 1.0:
        return
    p = Phase(phi, gamma, duration)
    assert p.io_time + p.comm_time + p.cpu_time == pytest.approx(p.duration, rel=1e-9)
    assert p.cpu_fraction >= 0


# ---------------------------------------------------------------------------
# WorkingSet (Eq. 7)
# ---------------------------------------------------------------------------

def test_working_set_expansion():
    ws = WorkingSet(phi=0.5, gamma=0.1, rho=0.2, tau=3)
    phases = ws.phases(program_total_time=100.0)
    assert len(phases) == 3
    for p in phases:
        assert p.duration == pytest.approx(20.0)
        assert p.io_fraction == 0.5
    assert ws.relative_time == pytest.approx(0.6)


def test_working_set_scaling():
    ws = WorkingSet(phi=0.0, gamma=0.0, rho=0.5, tau=2)
    phases = ws.phases(100.0, scale=0.5)
    assert all(p.duration == pytest.approx(25.0) for p in phases)


def test_working_set_validation():
    with pytest.raises(ModelError):
        WorkingSet(phi=1.5, gamma=0, rho=0.1)
    with pytest.raises(ModelError):
        WorkingSet(phi=0.5, gamma=0.6, rho=0.1)
    with pytest.raises(ModelError):
        WorkingSet(phi=0.1, gamma=0, rho=0.0)
    with pytest.raises(ModelError):
        WorkingSet(phi=0.1, gamma=0, rho=0.1, tau=0)
    with pytest.raises(ModelError):
        WorkingSet(phi=0.1, gamma=0, rho=0.1, tau=1.5)  # type: ignore[arg-type]
    with pytest.raises(ModelError):
        WorkingSet(phi=0.1, gamma=0, rho=0.1).phases(0.0)


# ---------------------------------------------------------------------------
# Program (Eqs. 2-6)
# ---------------------------------------------------------------------------

def fig1_program():
    """The paper's Figure 1 example: Γ = [(0.52, 0.29, 0.287, 1),
    (0, 0.85, 0.185, 2), (0, 0.57, 0.194, 1), (0.81, 0, 0.148, 1)]."""
    return Program(
        "fig1",
        [
            WorkingSet(0.52, 0.29, 0.287, 1),
            WorkingSet(0.0, 0.85, 0.185, 2),
            WorkingSet(0.0, 0.57, 0.194, 1),
            WorkingSet(0.81, 0.0, 0.148, 1),
        ],
        total_time=100.0,
        normalize=False,
    )


def test_fig1_example_relative_times_sum_to_one():
    prog = fig1_program()
    assert sum(ws.relative_time for ws in prog.working_sets) == pytest.approx(
        0.999, abs=1e-9
    )
    assert prog.phase_count == 5


def test_fig1_example_requirements():
    prog = fig1_program()
    # Hand-computed from the paper's vector (T = 100 s reference):
    # R_Disk = 0.52·28.7 + 0.81·14.8 = 26.912
    assert prog.disk_requirement == pytest.approx(26.912, rel=1e-9)
    # R_COM = 0.29·28.7 + 0.85·18.5·2 + 0.57·19.4 = 50.831
    assert prog.comm_requirement == pytest.approx(50.831, rel=1e-9)
    # Eq. 2 consistency.
    assert prog.execution_time == pytest.approx(
        prog.cpu_requirement + prog.disk_requirement + prog.comm_requirement
    )


def test_program_normalization():
    ws = WorkingSet(0.5, 0.0, 0.25, 2)  # Σρτ = 0.5 → scaled ×2
    prog = Program("p", [ws], total_time=100.0, normalize=True)
    assert prog.execution_time == pytest.approx(100.0)
    phases = prog.phases()
    assert all(p.duration == pytest.approx(50.0) for p in phases)


def test_program_without_normalization_keeps_printed_rho():
    ws = WorkingSet(0.5, 0.0, 0.25, 2)
    prog = Program("p", [ws], total_time=100.0, normalize=False)
    assert prog.execution_time == pytest.approx(50.0)


def test_program_validation():
    with pytest.raises(ModelError):
        Program("p", [], 100.0)
    with pytest.raises(ModelError):
        Program("p", [WorkingSet(0.1, 0, 0.1)], 0.0)


def test_program_percentages_sum_to_100():
    prog = fig1_program()
    assert prog.io_percentage + prog.cpu_percentage + prog.comm_percentage == (
        pytest.approx(100.0)
    )


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=0.9),
            st.floats(min_value=0.01, max_value=1.0),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=6,
    ),
    st.floats(min_value=1.0, max_value=1000.0),
)
def test_program_normalized_tiles_total_time(sets, total):
    """Property: with normalize=True, phases always tile total_time and
    Eqs. 3+4+5 always reconstruct Eq. 2."""
    wss = [WorkingSet(phi, 0.0, rho, tau) for phi, rho, tau in sets]
    prog = Program("p", wss, total)
    assert prog.execution_time == pytest.approx(total, rel=1e-9)
    assert prog.cpu_requirement + prog.disk_requirement + prog.comm_requirement == (
        pytest.approx(prog.execution_time, rel=1e-9)
    )


# ---------------------------------------------------------------------------
# Application (Eq. 8)
# ---------------------------------------------------------------------------

def test_application_aggregates():
    p1 = Program("a", [WorkingSet(0.5, 0, 1.0, 1)], 10.0)
    p2 = Program("b", [WorkingSet(0.0, 0, 1.0, 1)], 30.0)
    app = Application("app", [p1, p2])
    assert app.execution_time == pytest.approx(40.0)
    assert app.disk_requirement == pytest.approx(5.0)
    assert app.cpu_requirement == pytest.approx(35.0)
    assert app.io_percentage == pytest.approx(12.5)
    assert app.program("a") is p1
    with pytest.raises(ModelError):
        app.program("c")


def test_application_validation():
    with pytest.raises(ModelError):
        Application("empty", [])
    p = Program("a", [WorkingSet(0, 0, 1.0, 1)], 1.0)
    with pytest.raises(ModelError):
        Application("dup", [p, p])


def test_requirements_table_shape():
    p1 = Program("a", [WorkingSet(0.5, 0, 1.0, 1)], 10.0)
    app = Application("app", [p1])
    table = app.requirements_table()
    assert set(table) == {"a", "app"}
    assert set(table["a"]) == {"cpu", "io", "comm", "total"}

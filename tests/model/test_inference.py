"""Tests for working-set inference (phases → Γ vectors)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.model import (
    Phase,
    Program,
    WorkingSet,
    build_qcrd,
    infer_working_sets,
    program_from_phases,
)


def test_identical_phases_collapse_to_one_set():
    phases = [Phase(0.5, 0.1, 2.0)] * 4
    sets = infer_working_sets(phases, total_time=8.0)
    assert len(sets) == 1
    ws = sets[0]
    assert ws.tau == 4
    assert ws.phi == pytest.approx(0.5)
    assert ws.gamma == pytest.approx(0.1)
    assert ws.rho == pytest.approx(0.25)


def test_distinct_phases_stay_separate():
    phases = [Phase(0.9, 0.0, 1.0), Phase(0.1, 0.0, 1.0), Phase(0.9, 0.0, 1.0)]
    sets = infer_working_sets(phases, total_time=3.0)
    # Not consecutive → three groups even though first and third match.
    assert [ws.tau for ws in sets] == [1, 1, 1]


def test_tolerance_merges_near_identical():
    phases = [Phase(0.50, 0.0, 1.0), Phase(0.505, 0.0, 1.004)]
    assert len(infer_working_sets(phases, 2.0, tolerance=0.02)) == 1
    assert len(infer_working_sets(phases, 2.0, tolerance=0.001)) == 2


def test_validation():
    with pytest.raises(ModelError):
        infer_working_sets([], 1.0)
    with pytest.raises(ModelError):
        infer_working_sets([Phase(0, 0, 1.0)], 0.0)
    with pytest.raises(ModelError):
        infer_working_sets([Phase(0, 0, 1.0)], 1.0, tolerance=-1)
    with pytest.raises(ModelError):
        program_from_phases("p", [])


def test_qcrd_roundtrip():
    """Expanding QCRD's programs to phases and inferring back recovers
    the published working-set structure."""
    app = build_qcrd()
    p1 = app.programs[0]
    inferred = infer_working_sets(p1.phases(), total_time=p1.total_time)
    # The 24 alternating phases collapse back into 24 single-phase sets
    # (odd/even never adjacent-identical).
    assert len(inferred) == 24
    assert all(ws.tau == 1 for ws in inferred)
    assert inferred[0].phi == pytest.approx(0.14)
    assert inferred[1].phi == pytest.approx(0.97)

    p2 = app.programs[1]
    inferred2 = infer_working_sets(p2.phases(), total_time=p2.total_time)
    # The 13 identical phases collapse into one Γ with τ=13.
    assert len(inferred2) == 1
    assert inferred2[0].tau == 13
    assert inferred2[0].phi == pytest.approx(0.92)


def test_program_from_phases_reproduces_requirements():
    original = Program(
        "orig",
        [WorkingSet(0.3, 0.1, 0.2, 3), WorkingSet(0.8, 0.0, 0.4, 1)],
        total_time=50.0,
    )
    rebuilt = program_from_phases("rebuilt", original.phases())
    assert rebuilt.execution_time == pytest.approx(original.execution_time)
    assert rebuilt.disk_requirement == pytest.approx(original.disk_requirement)
    assert rebuilt.comm_requirement == pytest.approx(original.comm_requirement)
    assert rebuilt.cpu_requirement == pytest.approx(original.cpu_requirement)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.8),
            st.floats(min_value=0.1, max_value=10.0),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_inference_roundtrip_property(groups):
    """Property: any working-set structure survives expand → infer,
    preserving total requirements."""
    sets = [WorkingSet(phi, 0.0, rho, tau) for phi, rho, tau in groups]
    prog = Program("p", sets, total_time=100.0)
    rebuilt = program_from_phases("r", prog.phases(), tolerance=1e-9)
    assert rebuilt.execution_time == pytest.approx(prog.execution_time, rel=1e-9)
    assert rebuilt.disk_requirement == pytest.approx(prog.disk_requirement, rel=1e-6)
    assert rebuilt.phase_count == prog.phase_count

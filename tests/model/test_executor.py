"""Tests for the machine executor and speedup studies."""

import pytest

from repro.errors import ModelError
from repro.model import (
    Application,
    ApplicationExecutor,
    MachineConfig,
    Program,
    WorkingSet,
    build_qcrd,
    cpu_speedup_study,
    disk_speedup_study,
    generate_application,
)
from repro.model.speedup import speedup_study


def tiny_app(phi=0.5, gamma=0.0, total=2.0, nprogs=1):
    progs = [
        Program(f"p{i}", [WorkingSet(phi, gamma, 1.0, 1)], total)
        for i in range(nprogs)
    ]
    return Application("tiny", progs)


def test_machine_config_validation():
    with pytest.raises(ModelError):
        MachineConfig(cpus=0)
    with pytest.raises(ModelError):
        MachineConfig(disks=0)
    with pytest.raises(ModelError):
        MachineConfig(io_chunk=0)
    with pytest.raises(ModelError):
        MachineConfig(io_rate=0)


def test_cpu_only_program_runs_for_cpu_time():
    app = tiny_app(phi=0.0, total=3.0)
    res = ApplicationExecutor(app).run()
    assert res.makespan == pytest.approx(3.0, rel=0.01)
    assert res.programs["p0"].cpu_busy == pytest.approx(3.0, rel=0.01)
    assert res.programs["p0"].io_busy == 0.0


def test_io_burst_time_close_to_model_demand():
    """Uncontended sequential I/O should track the model's demand
    (the paper reports <10% simulation error)."""
    app = tiny_app(phi=1.0, total=2.0)
    res = ApplicationExecutor(app).run()
    assert res.programs["p0"].io_busy == pytest.approx(2.0, rel=0.10)


def test_comm_burst_executes():
    app = tiny_app(phi=0.0, gamma=1.0, total=1.0)
    res = ApplicationExecutor(app).run()
    pr = res.programs["p0"]
    assert pr.comm_busy > 0
    assert pr.bytes_sent > 0
    assert pr.comm_busy == pytest.approx(1.0, rel=0.15)


def test_programs_run_concurrently():
    app = tiny_app(phi=0.0, total=5.0, nprogs=3)
    res = ApplicationExecutor(app).run()
    # Per-node CPUs: concurrent, so makespan ≈ one program's time.
    assert res.makespan == pytest.approx(5.0, rel=0.02)


def test_more_cpus_shrink_cpu_burst():
    app = tiny_app(phi=0.0, total=8.0)
    slow = ApplicationExecutor(app, MachineConfig(cpus=1)).run()
    fast = ApplicationExecutor(app, MachineConfig(cpus=8)).run()
    assert fast.makespan < slow.makespan / 4


def test_more_disks_shrink_io_burst():
    app = tiny_app(phi=1.0, total=4.0)
    slow = ApplicationExecutor(app, MachineConfig(disks=1)).run()
    fast = ApplicationExecutor(app, MachineConfig(disks=8)).run()
    assert fast.makespan < slow.makespan / 2


def test_result_aggregates():
    app = tiny_app(phi=0.5, total=2.0, nprogs=2)
    res = ApplicationExecutor(app).run()
    assert res.cpu_busy == pytest.approx(
        sum(p.cpu_busy for p in res.programs.values())
    )
    assert 0 < res.io_percentage < 100
    assert res.cpu_percentage + res.io_percentage == pytest.approx(100.0, abs=1.0)


def test_phase_counts_recorded():
    app = build_qcrd()
    res = ApplicationExecutor(app).run()
    assert res.programs["Program1"].phases_run == 24
    assert res.programs["Program2"].phases_run == 13


# ---------------------------------------------------------------------------
# Speedup studies (Figures 4-5 shapes)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def qcrd_disk_speedups():
    return disk_speedup_study(build_qcrd(), counts=(2, 8, 32))


@pytest.fixture(scope="module")
def qcrd_cpu_speedups():
    return cpu_speedup_study(build_qcrd(), counts=(2, 8, 32))


def test_disk_speedup_is_flat_and_low(qcrd_disk_speedups):
    """Figure 4: 'the speedup changes slightly with the increasing
    value of the disk number'."""
    s = qcrd_disk_speedups
    assert s[1] == 1.0
    assert 1.0 <= s[2] <= 1.35
    assert 1.0 <= s[32] <= 1.5
    # Monotone but slight.
    assert s[2] <= s[8] <= s[32]


def test_cpu_speedup_exceeds_disk_speedup(qcrd_cpu_speedups, qcrd_disk_speedups):
    """'it is expected to efficiently improve the performance of QCRD
    by increasing the number of CPUs'."""
    assert qcrd_cpu_speedups[32] > qcrd_disk_speedups[32]


def test_cpu_speedup_rises_then_saturates(qcrd_cpu_speedups):
    """Figure 5 shape: grows toward ~2.1-2.4, then flattens."""
    s = qcrd_cpu_speedups
    assert s[2] > 1.2
    assert 1.9 <= s[32] <= 2.6
    # Saturation: going 8 → 32 adds little.
    assert s[32] - s[8] < 0.3


def test_speedup_study_validation():
    app = build_qcrd()
    with pytest.raises(ModelError):
        speedup_study(app, "gpus", counts=(2,))
    with pytest.raises(ModelError):
        speedup_study(app, "disks", counts=(0,))


def test_speedup_study_includes_baseline():
    s = disk_speedup_study(tiny_app(), counts=(2,))
    assert s[1] == 1.0
    assert set(s) == {1, 2}


# ---------------------------------------------------------------------------
# Synthetic generator
# ---------------------------------------------------------------------------

def test_synthetic_generation_reproducible():
    a = generate_application(seed=7)
    b = generate_application(seed=7)
    assert len(a.programs) == len(b.programs)
    for pa, pb in zip(a.programs, b.programs):
        assert pa.total_time == pb.total_time
        assert [ws.phi for ws in pa.working_sets] == [ws.phi for ws in pb.working_sets]


def test_synthetic_generation_varies_with_seed():
    a = generate_application(seed=1)
    b = generate_application(seed=2)
    sig_a = [(p.total_time, len(p.working_sets)) for p in a.programs]
    sig_b = [(p.total_time, len(p.working_sets)) for p in b.programs]
    assert sig_a != sig_b


def test_synthetic_applications_are_valid_and_runnable():
    app = generate_application(seed=3)
    for p in app.programs:
        assert p.execution_time == pytest.approx(p.total_time, rel=1e-6)
        for ws in p.working_sets:
            assert ws.phi + ws.gamma <= 1.0 + 1e-12
    # Scale down so the run is quick, then execute it end to end.
    small = Application(
        "small",
        [
            Program(p.name, p.working_sets, total_time=0.5)
            for p in app.programs
        ],
    )
    res = ApplicationExecutor(small).run()
    assert res.makespan > 0


def test_synthetic_params_validation():
    from repro.model import SyntheticAppParams

    with pytest.raises(ModelError):
        SyntheticAppParams(programs=(0, 2))
    with pytest.raises(ModelError):
        SyntheticAppParams(io_fraction=(0.5, 0.2))
    with pytest.raises(ModelError):
        SyntheticAppParams(total_time=(0.0, 1.0))

"""Tests for the QCRD instantiation (paper §2.2, Eqs. 8-10)."""

import pytest

from repro.model import build_qcrd
from repro.model.qcrd import P1_EVEN, P1_ODD, P2


def test_qcrd_structure_matches_eq_8():
    app = build_qcrd()
    assert app.name == "QCRD"
    assert [p.name for p in app.programs] == ["Program1", "Program2"]


def test_program1_matches_eq_9():
    app = build_qcrd()
    p1 = app.programs[0]
    # 24 working sets, alternating odd/even parameters.
    assert len(p1.working_sets) == 24
    assert p1.phase_count == 24
    for i, ws in enumerate(p1.working_sets):
        expected = P1_ODD if i % 2 == 0 else P1_EVEN
        assert ws.phi == expected.phi
        assert ws.rho == expected.rho
        assert ws.gamma == 0.0


def test_program2_matches_eq_10():
    app = build_qcrd()
    p2 = app.programs[1]
    assert len(p2.working_sets) == 1
    ws = p2.working_sets[0]
    assert ws.phi == 0.92
    assert ws.gamma == 0.0
    assert ws.rho == 0.03
    assert ws.tau == 13
    assert p2.phase_count == 13


def test_program2_more_io_intensive_than_program1():
    """The paper's observation from Figures 2-3."""
    app = build_qcrd()
    p1, p2 = app.programs
    assert p2.io_percentage > p1.io_percentage
    assert p2.io_percentage > 90.0
    assert p1.io_percentage < 30.0


def test_program1_runs_longer():
    """'the first program runs longer than the second program'."""
    app = build_qcrd()
    p1, p2 = app.programs
    assert p1.execution_time > p2.execution_time


def test_application_is_io_heavy():
    """Figure 3: the application spends a noticeably large share on I/O."""
    app = build_qcrd()
    assert 30.0 < app.io_percentage < 60.0


def test_custom_durations():
    app = build_qcrd(p1_total_time=200.0, p2_total_time=10.0)
    assert app.programs[0].execution_time == pytest.approx(200.0)
    assert app.programs[1].execution_time == pytest.approx(10.0)

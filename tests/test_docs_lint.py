"""Docs stay honest: run tools/check_docs.py as part of the suite."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[1] / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


def test_doc_files_exist():
    missing = [rel for rel in check_docs.DOC_FILES
               if not (check_docs.REPO_ROOT / rel).exists()]
    assert not missing


def test_docs_lint_clean():
    problems = check_docs.run_checks()
    assert not problems, "\n".join(problems)


def test_lint_catches_dead_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](no/such/file.md) and [ok](doc.md)\n")
    problems = check_docs.check_links(doc, doc.read_text())
    assert len(problems) == 1
    assert "no/such/file.md" in problems[0]


def test_lint_catches_bad_import(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```python\nfrom repro.obs import Tracer, NoSuchThing\n```\n"
    )
    problems = check_docs.check_imports(doc, doc.read_text())
    assert len(problems) == 1
    assert "NoSuchThing" in problems[0]


def test_lint_ignores_non_python_fences(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```text\nfrom repro.nowhere import X\n```\n")
    assert check_docs.check_imports(doc, doc.read_text()) == []

"""Docs stay honest: run tools/check_docs.py as part of the suite."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[1] / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


def test_doc_files_exist():
    missing = [rel for rel in check_docs.DOC_FILES
               if not (check_docs.REPO_ROOT / rel).exists()]
    assert not missing


def test_docs_lint_clean():
    problems = check_docs.run_checks()
    assert not problems, "\n".join(problems)


def test_lint_catches_dead_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](no/such/file.md) and [ok](doc.md)\n")
    problems = check_docs.check_links(doc, doc.read_text())
    assert len(problems) == 1
    assert "no/such/file.md" in problems[0]


def test_lint_catches_bad_import(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```python\nfrom repro.obs import Tracer, NoSuchThing\n```\n"
    )
    problems = check_docs.check_imports(doc, doc.read_text())
    assert len(problems) == 1
    assert "NoSuchThing" in problems[0]


def test_lint_ignores_non_python_fences(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```text\nfrom repro.nowhere import X\n```\n")
    assert check_docs.check_imports(doc, doc.read_text()) == []


def test_lint_catches_undocumented_package(tmp_path):
    src = tmp_path / "src"
    (src / "repro" / "ghostpkg").mkdir(parents=True)
    (src / "repro" / "ghostpkg" / "__init__.py").write_text("")
    (src / "repro" / "covered").mkdir()
    (src / "repro" / "covered" / "__init__.py").write_text("")
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "covered.md").write_text("all about `repro.covered` here\n")
    problems = check_docs.check_package_coverage(src, docs)
    assert len(problems) == 1
    assert "ghostpkg" in problems[0]


def test_package_coverage_ignores_plain_modules(tmp_path):
    # errors.py / rng.py style top-level modules are not packages and
    # need no dedicated doc page.
    src = tmp_path / "src"
    (src / "repro").mkdir(parents=True)
    (src / "repro" / "units.py").write_text("")
    (src / "repro" / "nopkg").mkdir()  # directory without __init__.py
    docs = tmp_path / "docs"
    docs.mkdir()
    assert check_docs.check_package_coverage(src, docs) == []


def test_every_repro_package_documented():
    problems = check_docs.check_package_coverage(
        check_docs.REPO_ROOT / "src", check_docs.REPO_ROOT / "docs")
    assert not problems, "\n".join(problems)

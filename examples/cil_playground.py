#!/usr/bin/env python3
"""CIL playground: the simulated CLI VM by itself.

Shows the virtual-execution-system pieces the benchmarks stand on:
textual CIL assembly, verification, JIT warm-up, managed exceptions,
static fields, and the microbenchmark kernels across VM profiles.

Usage::

    python examples/cil_playground.py
"""

from repro.cli import CliRuntime, ManagedException, MethodBuilder
from repro.cli.disasm import disassemble, parse_cil
from repro.cli.microbench import run_kernel
from repro.cli.profiles import VM_PROFILES
from repro.sim import Engine


FIB_SOURCE = """
.method fib(n) returns
.locals a b t i
    ldc 0
    stloc a
    ldc 1
    stloc b
    ldc 0
    stloc i
top:
    ldloc i
    ldarg n
    clt
    brfalse done
    ldloc b
    stloc t
    ldloc a
    ldloc b
    add
    stloc b
    ldloc t
    stloc a
    ldloc i
    ldc 1
    add
    stloc i
    br top
done:
    ldloc a
    ret
"""


def textual_assembly() -> None:
    print("=" * 64)
    print("1. Textual CIL: assemble, run, disassemble")
    print("=" * 64)
    method = parse_cil(FIB_SOURCE)
    runtime = CliRuntime(Engine())
    values = [
        runtime.engine.run_process(runtime.invoke(method, [n])) for n in range(10)
    ]
    print(f"  fib(0..9) = {values}")
    print(f"  verified max stack: {method.max_stack}")
    print("  disassembly (first 8 lines):")
    for line in disassemble(method).splitlines()[:8]:
        print(f"    {line}")


def jit_warmup() -> None:
    print()
    print("=" * 64)
    print("2. JIT warm-up: first call pays compilation")
    print("=" * 64)
    method = parse_cil(FIB_SOURCE)
    runtime = CliRuntime(Engine())
    engine = runtime.engine

    def scenario():
        t0 = engine.now
        yield from runtime.invoke(method, [30])
        first = engine.now - t0
        t1 = engine.now
        yield from runtime.invoke(method, [30])
        return first, engine.now - t1

    first, warm = engine.run_process(scenario())
    print(f"  first call: {first * 1e6:8.2f} us (includes JIT)")
    print(f"  warm call : {warm * 1e6:8.2f} us")
    print(f"  methods compiled: {runtime.jit.methods_compiled.value}")


def managed_exceptions() -> None:
    print()
    print("=" * 64)
    print("3. Managed exceptions: protected regions catch faults")
    print("=" * 64)
    safe_div = (
        MethodBuilder("safe_div", returns=True)
        .arg("a").arg("b")
        .begin_try()
        .ldarg("a").ldarg("b").div().ret()
        .end_try("oops")
        .label("oops").pop().ldc(-1).ret()
        .build()
    )
    runtime = CliRuntime(Engine())
    for a, b in ((10, 2), (10, 0)):
        r = runtime.engine.run_process(runtime.invoke(safe_div, [a, b]))
        print(f"  safe_div({a}, {b}) = {r}")
    print(f"  exceptions caught in managed code: "
          f"{runtime.interpreter.exceptions_caught.value}")

    boom = MethodBuilder("boom").ldstr("unhandled!").throw().build()
    try:
        runtime.engine.run_process(runtime.invoke(boom))
    except ManagedException as exc:
        print(f"  uncaught exception reached the host: {exc.type_name}")


def static_counters() -> None:
    print()
    print("=" * 64)
    print("4. Static fields persist across invocations")
    print("=" * 64)
    bump = parse_cil(
        ".method bump() returns\n"
        " ldsfld Counters::hits\n ldc 1\n add\n dup\n stsfld Counters::hits\n ret"
    )
    runtime = CliRuntime(Engine())
    values = [runtime.engine.run_process(runtime.invoke(bump)) for _ in range(3)]
    print(f"  three calls returned {values}")


def microbenchmarks() -> None:
    print()
    print("=" * 64)
    print("5. Microbenchmark kernels across VM profiles (warm call, us)")
    print("=" * 64)
    kernels = ("arith", "branch", "call", "alloc")
    print(f"  {'profile':12s}" + "".join(f"{k:>10s}" for k in kernels))
    for profile in VM_PROFILES:
        times = [
            run_kernel(k, n=200, profile=profile).warm_call_time * 1e6
            for k in kernels
        ]
        print(f"  {profile:12s}" + "".join(f"{t:10.1f}" for t in times))


if __name__ == "__main__":
    textual_assembly()
    jit_warmup()
    managed_exceptions()
    static_counters()
    microbenchmarks()

#!/usr/bin/env python3
"""Break the stack deterministically, then watch it recover.

Walks the three resilience stories from ``docs/robustness.md``, with
assertions on each so the script doubles as a CI smoke test:

1. **Faulted trace replay** — the Dmine workload on a disk that
   returns transient media errors; a :class:`repro.faults.RetryPolicy`
   absorbs every one and the obs trace attributes each
   ``fault.injected`` / ``retry.attempt`` to its layer.
2. **Degraded mirror** — one member of a RAID-1 pair dies mid-read;
   the array fails over, keeps serving, and resilvers the replacement.
3. **Webserver under connection drops** — server-side resets answered
   by client retries; every torn request lands in the errors gauge.

Everything is seed-driven: run it twice and the fault schedules,
metrics, and printed numbers are identical.

Usage::

    python examples/fault_injection.py [output-dir]
"""

import sys
from pathlib import Path

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    Retrier,
    RetryPolicy,
)
from repro.obs import Tracer, analyze, write_jsonl
from repro.sim import Engine
from repro.storage import Disk, DiskGeometry, MirroredArray
from repro.traces import ReplayConfig, TraceReplayer, generate_dmine
from repro.units import MiB
from repro.webserver import HostConfig, WebServerHost


def faulted_replay(out_dir: Path) -> None:
    # 1. Replay Dmine against a disk that throws transient media
    #    errors and occasionally runs slow.  The retry policy turns
    #    both into latency instead of failure.
    tracer = Tracer()
    plan = FaultPlan(seed=11, specs=(
        FaultSpec(kind="disk.media_error", target="local-disk",
                  probability=0.03),
        FaultSpec(kind="disk.slow", target="local-disk",
                  probability=0.10, slow_factor=4.0),
    ))
    header, records = generate_dmine(dataset_size=8 * MiB, passes=1)
    cfg = ReplayConfig(warmup=False, file_size=32 * MiB, tracer=tracer,
                       fault_plan=plan, retry=RetryPolicy(max_attempts=5))
    result = TraceReplayer(cfg).replay(header, records, "faulted-dmine")

    print("1. faulted trace replay")
    print(f"   faults injected:   {result.faults_injected}")
    print(f"   retries:           {result.retries} "
          f"(exhausted: {result.retries_exhausted})")
    print(f"   total time:        {result.total_time:.3f}s simulated")
    assert result.faults_injected > 0, "the plan should have fired"
    assert result.retries > 0, "media errors should have forced retries"
    assert result.retries_exhausted == 0, "the budget should suffice"

    jsonl = out_dir / "faulted_dmine.jsonl"
    write_jsonl(str(jsonl), tracer)
    instants = analyze(tracer.events).instant_summary()
    for name in ("fault.injected", "retry.attempt"):
        row = instants[name]
        layers = " ".join(f"{k}x{v}" for k, v in sorted(row["layers"].items()))
        print(f"   {name:<16} {row['count']:>3}  ({layers})")
    print(f"   trace written to {jsonl} "
          f"(try: python -m repro.obs report {jsonl})")


def degraded_mirror() -> None:
    # 2. A two-way mirror loses a member at t=0; the drive is swapped
    #    at t=5 and the array rebuilds it from the survivor.
    engine = Engine()
    plan = FaultPlan(seed=23, specs=(
        FaultSpec(kind="disk.fail", target="m1", end=5.0),
    ))
    injector = FaultInjector(engine, plan)
    geo = DiskGeometry(cylinders=2000, heads=2, sectors_per_track=40)
    disks = [Disk(engine, geometry=geo, name=f"m{i}", injector=injector)
             for i in range(2)]
    array = MirroredArray(engine, disks)

    def workload():
        for i in range(60):
            yield array.submit_range((i * 97) % (array.total_blocks - 8), 8)
        yield engine.timeout(max(0.0, 6.0 - engine.now))
        copied = yield from array.rebuild(1)
        return copied

    copied = engine.run_process(workload())
    print("\n2. degraded mirror")
    print(f"   degraded reads:    {array.degraded_reads.value}")
    print(f"   failovers:         {array.failovers.value}")
    print(f"   rebuild copied:    {copied} blocks "
          f"(progress {array.rebuild_progress:.0%})")
    print(f"   in-sync members:   {sorted(array.in_sync_members())}")
    assert array.degraded_reads.value > 0, "reads should have run degraded"
    assert copied == geo.total_blocks, "rebuild should copy the full extent"
    assert not array.degraded and array.rebuild_progress == 1.0


def webserver_resets() -> None:
    # 3. A quarter of server-side sends are torn down mid-transfer;
    #    the client's retrier re-issues each request on a fresh
    #    connection until it lands.
    plan = FaultPlan(seed=77, specs=(
        FaultSpec(kind="net.drop", target="server", probability=0.25),
    ))
    host = WebServerHost(HostConfig(fault_plan=plan))
    client = host.client(retrier=Retrier(
        host.engine, RetryPolicy(max_attempts=6), category="client"))

    def driver():
        statuses = []
        for _ in range(12):
            response = yield from client.get("/images/photo2.jpg")
            statuses.append(response.status)
        return statuses

    statuses = host.engine.run_process(driver())
    print("\n3. webserver under connection drops")
    print(f"   requests:          {len(statuses)} (all "
          f"{statuses[0]}s: {all(s == 200 for s in statuses)})")
    print(f"   resets injected:   {host.injector.injected.value}")
    print(f"   client retries:    {client.retrier.retries.value}")
    print(f"   server failures:   {host.metrics.failures} "
          f"({dict(host.metrics.failure_reasons)})")
    assert all(s == 200 for s in statuses), "every request should recover"
    assert host.injector.injected.value > 0, "the plan should have fired"
    assert host.metrics.failures == host.injector.injected.value, \
        "every torn request must be accounted for"


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    faulted_replay(out_dir)
    degraded_mirror()
    webserver_resets()
    print("\nAll fault scenarios recovered.")


if __name__ == "__main__":
    target = (Path(sys.argv[1]) if len(sys.argv) > 1
              else Path("fault_injection_out"))
    main(target)

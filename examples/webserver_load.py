#!/usr/bin/env python3
"""Web server under multi-client load.

The paper notes "the number of threads increases with the increasing
number of clients" but only measures a single client.  This example
scales the client population and reports throughput, latency and
thread counts — the study the paper's design enables.

Usage::

    python examples/webserver_load.py
"""

from repro import WebServerHost, WorkloadConfig, WorkloadGenerator


def run_at_scale(num_clients: int):
    host = WebServerHost()
    config = WorkloadConfig(
        num_clients=num_clients,
        requests_per_client=12,
        get_fraction=0.75,
        mean_think_time=0.005,
        seed=42,
    )
    return WorkloadGenerator(host, config).run()


def main() -> None:
    print(f"{'clients':>8s} {'requests':>9s} {'threads':>8s} "
          f"{'mean ms':>9s} {'p95 ms':>9s} {'req/s':>9s} {'errors':>7s}")
    for clients in (1, 2, 4, 8, 16):
        result = run_at_scale(clients)
        p95 = result.latencies.percentile(95) * 1e3
        print(
            f"{clients:>8d} {result.count:>9d} {result.threads_spawned:>8d} "
            f"{result.mean_latency_ms:>9.3f} {p95:>9.3f} "
            f"{result.throughput:>9.1f} {result.error_count:>7d}"
        )
    print("\nOne managed thread per connection, as §4.1 describes; "
          "the buffer cache keeps repeat GETs fast even under load.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bench regression gate demo: baseline → perturbed run → gate failure.

Snapshots the web-server experiments (Tables 5–6) as a baseline, then
re-runs them on a deliberately slower disk (an injected regression)
and shows ``gate_compare`` catching the slowdown — the same check
``python -m repro.obs gate`` runs in CI against ``BENCH_seed.json``.

Usage::

    python examples/regression_gate.py [output-dir]
"""

import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.obs.report import (
    gate_compare,
    load_baseline,
    render_gate_report,
    write_baseline,
)
from repro.bench.experiments.tab5_tab6_webserver import run_tab5, run_tab6
from repro.storage import DiskParams
from repro.webserver import HostConfig

THRESHOLD = 0.10


def main(out_dir: Path) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Baseline snapshot: the paper configuration.
    base_path = out_dir / "BENCH_base.json"
    write_baseline(str(base_path), [run_tab5(), run_tab6()], label="paper config")
    print(f"baseline  -> {base_path}")

    # 2. Perturbed run: an 8x slower disk (transfer + controller), the
    #    kind of regression a bad storage-layer change would cause.
    slow = replace(
        DiskParams(),
        transfer_rate=DiskParams().transfer_rate / 8,
        controller_overhead=DiskParams().controller_overhead * 8,
    )
    config = HostConfig(disk_params=slow)
    cand_path = out_dir / "BENCH_slow_disk.json"
    write_baseline(
        str(cand_path),
        [run_tab5(config=config), run_tab6(config=config)],
        label="slow disk",
    )
    print(f"candidate -> {cand_path}\n")

    # 3. The gate: identical machinery to `python -m repro.obs gate`.
    findings = gate_compare(
        load_baseline(str(base_path)),
        load_baseline(str(cand_path)),
        threshold=THRESHOLD,
    )
    print(render_gate_report(findings, THRESHOLD))
    regressed = any(f.regression for f in findings)
    print(f"\ngate would exit {'1 (regression detected)' if regressed else '0'}")
    if not regressed:
        print("unexpected: the injected slowdown was not detected")
        return 1
    return 0


if __name__ == "__main__":
    target = (Path(sys.argv[1]) if len(sys.argv) > 1
              else Path(tempfile.mkdtemp(prefix="repro-gate-")))
    raise SystemExit(main(target))

#!/usr/bin/env python3
"""Model your own application with the behavioral model.

The paper argues "application developers can leverage the model ...
to evaluate the performance of I/O- and communication-intensive
applications without spending a huge amount of time implementing the
applications."  This example does exactly that:

1. builds the paper's Figure 1 example program Γ = [(0.52, 0.29,
   0.287, 1), (0, 0.85, 0.185, 2), (0, 0.57, 0.194, 1),
   (0.81, 0, 0.148, 1)];
2. pairs it with a synthetic I/O-heavy sibling program;
3. sweeps disks and CPUs and prints ASCII speedup curves.

Usage::

    python examples/model_your_application.py
"""

from repro import (
    Application,
    MachineConfig,
    Program,
    WorkingSet,
    cpu_speedup_study,
    disk_speedup_study,
)
from repro.bench.report import render_series


def figure1_program() -> Program:
    """The paper's Figure 1 example (communication-intensive)."""
    return Program(
        "fig1-example",
        [
            WorkingSet(phi=0.52, gamma=0.29, rho=0.287, tau=1),
            WorkingSet(phi=0.00, gamma=0.85, rho=0.185, tau=2),
            WorkingSet(phi=0.00, gamma=0.57, rho=0.194, tau=1),
            WorkingSet(phi=0.81, gamma=0.00, rho=0.148, tau=1),
        ],
        total_time=60.0,
    )


def io_heavy_sibling() -> Program:
    """A second program: an out-of-core style scanner."""
    return Program(
        "scanner",
        [WorkingSet(phi=0.85, gamma=0.05, rho=0.1, tau=10)],
        total_time=40.0,
    )


def main() -> None:
    p1 = figure1_program()
    p2 = io_heavy_sibling()
    app = Application("custom-app", [p1, p2])

    print("Model requirements (Eqs. 3-5):")
    for program in app.programs:
        print(
            f"  {program.name}: CPU {program.cpu_requirement:.1f}s, "
            f"I/O {program.disk_requirement:.1f}s, "
            f"COMM {program.comm_requirement:.1f}s"
        )

    counts = (2, 4, 8, 16)
    machine = MachineConfig()
    disks = disk_speedup_study(app, counts=counts, machine=machine)
    cpus = cpu_speedup_study(app, counts=counts, machine=machine)

    xs = [1, *counts]
    print()
    print(render_series(xs, [disks[n] for n in xs], label="speedup vs disks"))
    print()
    print(render_series(xs, [cpus[n] for n in xs], label="speedup vs CPUs"))
    print()
    better = "CPUs" if cpus[16] > disks[16] else "disks"
    print(f"For this application, adding {better} helps more "
          f"(x16: {max(cpus[16], disks[16]):.2f} vs {min(cpus[16], disks[16]):.2f}).")


if __name__ == "__main__":
    main()

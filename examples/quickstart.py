#!/usr/bin/env python3
"""Quickstart: a ten-minute tour of the library.

Runs one instance of each of the paper's three benchmarks on the
simulated CLI and prints what the paper would have printed:

1. the QCRD application from the behavioral model (§2);
2. a trace-driven replay of the data-mining trace (§3);
3. the multithreaded web server's warm-up curve (§4).

Usage::

    python examples/quickstart.py
"""

from repro import (
    ApplicationExecutor,
    ReplayConfig,
    TraceReplayer,
    WebServerHost,
    build_qcrd,
    generate_trace,
)
from repro.traces import IOOp
from repro.units import fmt_time


def benchmark_1_behavioral_model() -> None:
    print("=" * 64)
    print("Benchmark 1: QCRD via the application behavioral model")
    print("=" * 64)
    app = build_qcrd()
    for program in app.programs:
        print(
            f"  {program.name}: {program.phase_count} phases, "
            f"T={fmt_time(program.execution_time)}, "
            f"I/O {program.io_percentage:.1f}% / CPU {program.cpu_percentage:.1f}%"
        )
    result = ApplicationExecutor(app).run()
    print(f"  simulated makespan on 1 CPU + 1 disk per node: {fmt_time(result.makespan)}")
    for name, pr in result.programs.items():
        print(
            f"    {name}: cpu={fmt_time(pr.cpu_busy)} io={fmt_time(pr.io_busy)} "
            f"({pr.io_percentage:.1f}% I/O)"
        )


def benchmark_2_trace_replay() -> None:
    print()
    print("=" * 64)
    print("Benchmark 2: trace-driven replay (data mining trace)")
    print("=" * 64)
    header, records = generate_trace("dmine")
    print(f"  trace: {len(records)} records against {header.sample_file}")
    result = TraceReplayer(ReplayConfig(warmup=True)).replay(header, records, "dmine")
    for stats in result.timings.all_stats():
        print(f"    {stats}")
    print(f"  JIT-compiled methods: {result.jit_methods}; "
          f"CIL instructions executed: {result.instructions}")


def benchmark_3_web_server() -> None:
    print()
    print("=" * 64)
    print("Benchmark 3: multithreaded web server warm-up (Table 6)")
    print("=" * 64)
    host = WebServerHost()
    host.run_request_sequence([("GET", "/images/photo3.jpg")] * 6)
    for rec in host.metrics.gets():
        print(
            f"    trial {rec.index}: {rec.data_bytes} bytes read in "
            f"{rec.read_ms:.4f} ms (response {rec.response_ms:.3f} ms)"
        )
    print(f"  threads spawned: {host.server.threads_spawned.value} "
          "(one per connection, as in the paper)")


if __name__ == "__main__":
    benchmark_1_behavioral_model()
    benchmark_2_trace_replay()
    benchmark_3_web_server()

#!/usr/bin/env python3
"""Kill a cluster member mid-run and prove nothing acked was lost.

The full degraded lifecycle from ``docs/cluster.md`` on a 3-node,
2-way-replicated file-service cluster, with assertions on each stage
so the script doubles as a CI smoke test:

1. **Crash** — ``node-1`` dies at t=0.10s under Zipf open-arrival
   load: its connections reset, dirty pages are lost, probes eject it.
2. **Failover** — reads ride out the grey window on the surviving
   replica; bounded client retries keep every request completing.
3. **Rejoin + re-replication** — at t=0.22s the node returns, is
   readmitted for writes, and serves no reads until the repair agent
   has streamed its stale shards back from in-sync peers.
4. **Durability audit** — every byte the cluster acknowledged is
   re-verified present: ``lost_acked_writes == 0``.

Everything is seed-driven: run it twice and the numbers, traces, and
fault schedule are identical.

Usage::

    python examples/cluster_failover.py
"""

from repro.cluster import (
    ClusterConfig,
    ClusterWorkload,
    ClusterWorkloadConfig,
    FileCluster,
)
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Tracer, analyze


def main() -> None:
    tracer = Tracer()
    plan = FaultPlan(seed=11, specs=(
        FaultSpec(kind="node.crash", target="node-1",
                  start=0.10, end=0.22),
    ))
    cluster = FileCluster(ClusterConfig(
        nodes=3, replication=2, policy="round_robin",
        num_keys=16, seed=11, fault_plan=plan, tracer=tracer,
    ))
    result = ClusterWorkload(cluster, ClusterWorkloadConfig(
        requests=200, arrival_rate=500.0, seed=11,
    )).run()

    print("cluster failover under node.crash (node-1, 0.10s-0.22s)")
    print(f"   requests:          {result.completed}/{result.attempted} "
          f"completed ({result.aborted} aborted)")
    print(f"   throughput:        {result.throughput:.1f} req/s, "
          f"mean latency {result.mean_latency_ms:.3f} ms")
    print(f"   failovers:         {result.failovers} "
          f"(client retries: {result.retries})")
    print(f"   ejections:         {result.ejections}")
    print(f"   degraded requests: {result.degraded} "
          f"(served under reduced replication)")
    print(f"   rebuilt shards:    {result.rebuilt_keys} "
          f"({cluster.rebuilt_bytes.value} bytes of repair traffic)")
    by_node = " ".join(f"{n}x{c}"
                       for n, c in sorted(result.served_by_node.items()))
    print(f"   served by:         {by_node}")

    # The lifecycle actually happened, in order, on the tracer.
    names = [e.name for e in tracer.events]
    for stage in ("node.down", "lb.eject", "failover",
                  "lb.readmit", "rebalance.move", "node.up"):
        assert stage in names, f"missing lifecycle event {stage!r}"
    lifecycle = [n for n in names
                 if n in ("node.down", "lb.eject", "lb.readmit", "node.up")]
    assert lifecycle == ["node.down", "lb.eject", "lb.readmit", "node.up"]
    instants = analyze(tracer.events).instant_summary()
    print("   lifecycle events:  "
          + " ".join(f"{n}x{instants[n]['count']}" for n in sorted(set(
              lifecycle + ["failover", "rebalance.move"]))))

    # Availability degraded; durability did not.
    assert result.completed == result.attempted, "retries should absorb it"
    assert result.ejections >= 1 and result.failovers >= 1
    node = cluster.nodes["node-1"]
    assert node.is_up and node.crashes.value == 1
    assert cluster.balancer.is_in_sync("node-1"), "rebuild must finish"
    durability = cluster.verify_durability()
    print(f"   durability audit:  {durability['checked']} keys checked, "
          f"{durability['lost_acked_writes']} acked writes lost")
    assert durability["lost_acked_writes"] == 0, durability["lost"]

    print("\nOne node died; zero acknowledged writes did.")


if __name__ == "__main__":
    main()

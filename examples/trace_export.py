#!/usr/bin/env python3
"""Trace a paper experiment end to end and export the result.

Runs Table 1's trace replay (the Dmine data-mining application) with a
:class:`repro.obs.Tracer` attached, so every layer of the stack —
simulation processes, disk requests, cache and file-system operations,
JIT compiles, and the replayed records themselves — reports spans
against simulated time.  Exports the run as:

* Chrome ``trace_event`` JSON — drag it into https://ui.perfetto.dev
  (or ``chrome://tracing``) to see the timeline;
* JSONL — one event per line, for grepping and scripting;

and prints the per-span summary table.

See ``docs/observability.md`` for the formats and concepts.

Usage::

    python examples/trace_export.py [output-dir]
"""

import sys
from pathlib import Path

from repro.obs import (
    Tracer,
    render_summary,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.traces import ReplayConfig, TraceReplayer, generate_dmine


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Replay the Dmine trace with tracing enabled.  One tracer on
    #    the config instruments the whole stack the replayer builds.
    tracer = Tracer()
    header, records = generate_dmine()
    config = ReplayConfig(warmup=False, tracer=tracer)
    print(f"Replaying dmine: {len(records)} records ...")
    result = TraceReplayer(config).replay(header, records, "dmine")
    print(f"  cache hits/misses: {result.cache_hits}/{result.cache_misses}")
    print(f"  recorded events:   {len(tracer)} "
          f"(categories: {', '.join(tracer.categories_seen())})")

    # 2. Export both interchange formats.
    chrome_path = out_dir / "dmine_trace.json"
    jsonl_path = out_dir / "dmine_trace.jsonl"
    n = write_chrome_trace(str(chrome_path), tracer)
    write_jsonl(str(jsonl_path), tracer)
    print(f"\nWrote {n} events to {chrome_path}")
    print(f"  -> open https://ui.perfetto.dev and drag the file in")
    print(f"Wrote JSONL to {jsonl_path}")

    # 3. The span summary: where did simulated time go?
    print("\nSpan summary:")
    print(render_summary(tracer))

    # 4. Programmatic access: pick out the replay records that
    #    actually faulted to the disk (the paper's "page fault" spikes).
    rows = summarize(tracer)
    disk_reads = rows.get(("storage", "disk.read"))
    if disk_reads:
        print(f"\n{int(disk_reads['count'])} device reads, "
              f"worst {disk_reads['max_s'] * 1e3:.3f} ms — these are the "
              "faulting requests behind the slow replay records.")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("trace_export_out")
    main(target)

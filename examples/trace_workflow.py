#!/usr/bin/env python3
"""Full trace workflow: generate → write → read → replay → compare.

Demonstrates the §3 benchmark end to end, including the binary trace
file format (§3.2) on real disk files, and uses the replayer to
compare prefetch policies — the mechanism behind the paper's
§3.4 "prefetch ... page fault" discussion.

Usage::

    python examples/trace_workflow.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import ReplayConfig, TraceReplayer
from repro.traces import (
    APPLICATIONS,
    IOOp,
    generate_trace,
    read_trace,
    write_trace,
)


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Generate and persist all five application traces.
    print(f"Writing traces to {out_dir}")
    paths = {}
    for name in sorted(APPLICATIONS):
        header, records = generate_trace(name)
        path = out_dir / f"{name}.umdt"
        write_trace(path, header, records)
        paths[name] = path
        print(f"  {name:9s} {len(records):5d} records  {path.stat().st_size:8d} bytes")

    # 2. Read one back and replay it under three prefetch policies.
    header, records = read_trace(paths["dmine"])
    print(f"\nReplaying dmine ({header.num_records} records) under three "
          "prefetch policies (cold cache):")
    print(f"{'policy':>10s} {'mean read ms':>14s} {'cache misses':>13s} "
          f"{'total time s':>13s}")
    for policy in ("none", "fixed", "adaptive"):
        cfg = ReplayConfig(warmup=False, prefetch_policy=policy)
        result = TraceReplayer(cfg).replay(header, records, "dmine")
        print(
            f"{policy:>10s} {result.timings.mean_ms(IOOp.READ):>14.4f} "
            f"{result.cache_misses:>13d} {result.total_time:>13.3f}"
        )

    # 3. Show the per-request fault pattern for cholesky (Table 4's shape),
    #    with instrumentation probes feeding an activity timeline.
    header, records = read_trace(paths["cholesky"])
    result = TraceReplayer(
        ReplayConfig(warmup=False, probe_categories=("disk", "cache"))
    ).replay(header, records, "cholesky")
    print("\nCholesky per-request read times (buffer hits vs page faults):")
    for size, ms in result.rows_for(IOOp.READ):
        marker = "#" * min(60, max(1, int(ms * 4))) if ms > 0.05 else ""
        print(f"  {size:>8d} B {ms:>10.4f} ms {marker}")

    from repro.sim.timeline import render_timeline

    print("\nDisk/cache activity over the replay:")
    print(render_timeline(result.probe, buckets=56))


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-traces-"))
    main(target)

#!/usr/bin/env python
"""Docs lint: keep the Markdown honest.

Three checks over ``README.md``, ``docs/*.md`` and the other top-level
Markdown files:

1. **Links** — every relative (intra-repo) Markdown link target must
   exist on disk.  External ``http(s)://`` and ``mailto:`` links are
   not checked (no network in CI).
2. **Imports** — every ``import repro...`` / ``from repro... import``
   line inside a fenced ``python`` code block must resolve: the module
   must import and each imported name must exist on it.  Docs that
   mention modules or symbols that were renamed away fail here.
3. **Package coverage** — every top-level package under ``src/repro``
   must be referenced (as ``repro.<name>``) from at least one
   ``docs/*.md`` page, so no subsystem ships undocumented.  (This is
   the lint that would have caught ``repro.webserver`` having no page
   for its first twenty PRs.)

Run directly (``python tools/check_docs.py``) or via the test suite
(``tests/test_docs_lint.py``).  Exit status 0 = clean.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files to lint (relative to the repo root).
DOC_FILES = [
    "README.md",
    "CONTRIBUTING.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
] + sorted(
    str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md")
)

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_IMPORT_RE = re.compile(
    r"^\s*(?:from\s+(repro[\w.]*)\s+import\s+([\w.,\s()]+)|import\s+(repro[\w.]*))"
)


def iter_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, target)`` for every Markdown link."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def iter_python_fences(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, line)`` for each line inside a python fence."""
    in_python = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        fence = _FENCE_RE.match(line)
        if fence:
            in_python = not in_python and fence.group(1) in ("python", "py")
            continue
        if in_python:
            yield lineno, line


def _rel(doc: Path) -> str:
    try:
        return str(doc.relative_to(REPO_ROOT))
    except ValueError:  # a doc outside the repo (tests use tmp dirs)
        return str(doc)


def check_links(doc: Path, text: str) -> List[str]:
    problems = []
    for lineno, target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(f"{_rel(doc)}:{lineno}: dead link {target!r}")
    return problems


def _check_import_line(line: str) -> List[str]:
    match = _IMPORT_RE.match(line)
    if not match:
        return []
    problems = []
    if match.group(3):  # plain ``import repro.x.y``
        module = match.group(3)
        try:
            importlib.import_module(module)
        except Exception as exc:  # pragma: no cover - failure path
            problems.append(f"cannot import {module!r}: {exc}")
        return problems
    module, names = match.group(1), match.group(2)
    try:
        mod = importlib.import_module(module)
    except Exception as exc:
        return [f"cannot import {module!r}: {exc}"]
    names = names.split("#", 1)[0].strip().strip("()")
    for name in (n.strip() for n in names.split(",")):
        if not name or name == "*":
            continue
        name = name.split(" as ", 1)[0].strip()
        if not hasattr(mod, name):
            try:
                importlib.import_module(f"{module}.{name}")
            except Exception:
                problems.append(f"{module!r} has no attribute {name!r}")
    return problems


def check_imports(doc: Path, text: str) -> List[str]:
    problems = []
    for lineno, line in iter_python_fences(text):
        for problem in _check_import_line(line):
            problems.append(f"{_rel(doc)}:{lineno}: {problem}")
    return problems


def top_level_packages(src_root: Path) -> List[str]:
    """Top-level package names under ``{src_root}/repro`` (directories
    containing an ``__init__.py``)."""
    pkg_root = src_root / "repro"
    return sorted(
        p.name for p in pkg_root.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )


def check_package_coverage(
    src_root: Path, docs_dir: Path
) -> List[str]:
    """Every ``src/repro`` top-level package must appear (as
    ``repro.<name>``) in at least one ``docs/*.md`` page."""
    doc_texts = {
        p.name: p.read_text(encoding="utf-8")
        for p in sorted(docs_dir.glob("*.md"))
    }
    problems = []
    for pkg in top_level_packages(src_root):
        needle = f"repro.{pkg}"
        if not any(needle in text for text in doc_texts.values()):
            problems.append(
                f"src/repro/{pkg}: package not referenced from any "
                f"docs/*.md page (expected {needle!r} somewhere under "
                f"{docs_dir.name}/)"
            )
    return problems


def run_checks() -> List[str]:
    """Run every check; returns the list of problems (empty = clean)."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    problems = []
    for rel in DOC_FILES:
        doc = REPO_ROOT / rel
        if not doc.exists():
            problems.append(f"{rel}: listed in DOC_FILES but missing")
            continue
        text = doc.read_text(encoding="utf-8")
        problems.extend(check_links(doc, text))
        problems.extend(check_imports(doc, text))
    problems.extend(
        check_package_coverage(REPO_ROOT / "src", REPO_ROOT / "docs")
    )
    return problems


def main() -> int:
    problems = run_checks()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs lint: {len(DOC_FILES)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Stale-read-across-wait lint, runnable without installing the package.

Thin CLI wrapper around :mod:`repro.analysis.staleread` (the same pass
``python -m repro.sanitizer lint`` runs): flags a local variable that
caches mutable shared state, survives a ``yield`` wait point, and is
reused without a re-read.  See the module docstring for the three rule
shapes and the ``# sanitizer: allow`` pragma.

Usage::

    python tools/lint_staleread.py [--format json] [path ...]

Exit status: 0 clean, 1 findings, 2 usage errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sanitizer.__main__ import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))

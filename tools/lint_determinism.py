#!/usr/bin/env python
"""AST lint: forbid nondeterminism primitives in simulation code.

The simulator's contract is bit-identical replays: simulated time comes
from the event engine, randomness from seeded streams
(``repro.rng``).  Wall-clock reads and unseeded randomness silently
break that contract, so this lint walks the Python AST of
``src/repro/`` and rejects:

* wall-clock reads — ``time.time`` / ``time_ns`` / ``perf_counter`` /
  ``perf_counter_ns`` / ``monotonic`` / ``monotonic_ns``, and
  ``time.strftime`` with no explicit time tuple;
* ``datetime`` "now" constructors — ``datetime.now`` / ``utcnow`` /
  ``today`` (with or without the module prefix);
* bare stdlib randomness — any ``random.*`` module-level call
  (``random.random()``, ``random.randint(...)``, ...; seed an
  explicit ``random.Random(seed)`` or use ``repro.rng`` instead),
  plus ``os.urandom`` and ``uuid.uuid1`` / ``uuid.uuid4``;
* dict-order-dependent iteration over **id-keyed** maps — a dict that
  is written through ``d[id(x)] = ...`` and later iterated
  (``for k in d`` / ``d.items()`` / ``.keys()`` / ``.values()``)
  without a ``sorted(...)`` wrapper: ``id()`` values vary run to run,
  so the iteration order does too.

Deliberate wall-clock instrumentation (the bench runner's wall-time
measurements) is allowlisted per line with a ``# det: allow`` comment;
every such pragma should say *why* next to it.  A file whose whole
purpose is nondeterministic (e.g. a wall-clock shim) can carry a
single ``# det: allow-file`` comment instead of one pragma per line.

Usage::

    python tools/lint_determinism.py [--format json] [path ...]

(default path: src/repro).  Exit status: 0 clean, 1 findings, 2
usage/parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

PRAGMA = "det: allow"
FILE_PRAGMA = "det: allow-file"

#: time.<attr> calls that read the wall clock.
TIME_BANNED = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
}

#: datetime "current moment" constructors.
DATETIME_BANNED = {"now", "utcnow", "today"}

#: uuid constructors that embed time/randomness.
UUID_BANNED = {"uuid1", "uuid4"}


class Finding:
    def __init__(self, path: Path, line: int, message: str) -> None:
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "line": self.line,
            "message": self.message,
        }


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for plain Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, allowed_lines: Set[int]) -> None:
        self.path = path
        self.allowed_lines = allowed_lines
        self.findings: List[Finding] = []
        #: names of dicts observed being written through an id() key.
        self.id_keyed: Dict[str, int] = {}
        #: (name, line) of iterations over those dicts, resolved at the
        #: end so assignment order inside the file doesn't matter.
        self.iterations: List[Tuple[str, int]] = []

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if line in self.allowed_lines:
            return
        self.findings.append(Finding(self.path, line, message))

    # -- banned calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None:
            base = name.split(".", 1)[0]
            attr = name.rsplit(".", 1)[-1]
            if name in {f"time.{a}" for a in TIME_BANNED}:
                self.report(node, f"wall-clock read {name}() (use the "
                                  "engine's simulated clock)")
            elif name == "time.strftime" and len(node.args) < 2:
                self.report(node, "time.strftime() without an explicit "
                                  "time tuple reads the wall clock")
            elif attr in DATETIME_BANNED and base in ("datetime",) and (
                name in (f"datetime.{attr}", f"datetime.datetime.{attr}",
                         f"datetime.date.{attr}")
            ):
                self.report(node, f"{name}() reads the wall clock")
            elif (base == "random" and name.count(".") == 1
                  and attr != "Random"):
                self.report(node, f"bare {name}() uses the shared unseeded "
                                  "stdlib RNG (use repro.rng or an explicit "
                                  "random.Random(seed))")
            elif name == "os.urandom":
                self.report(node, "os.urandom() is nondeterministic "
                                  "(use a seeded stream)")
            elif base == "uuid" and attr in UUID_BANNED:
                self.report(node, f"{name}() embeds time/randomness")
        self.generic_visit(node)

    # -- id-keyed dict iteration ----------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_id_keyed_store(target)
        self.generic_visit(node)

    def _note_id_keyed_store(self, target: ast.AST) -> None:
        # d[id(x)] = ...  (possibly via AugAssign/AnnAssign targets too)
        if (
            isinstance(target, ast.Subscript)
            and _is_id_call(target.slice)
            and isinstance(target.value, ast.Name)
        ):
            self.id_keyed.setdefault(target.value.id, target.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_id_keyed_store(node.target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._note_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._note_iteration(node.iter)
        self.generic_visit(node)

    def _note_iteration(self, it: ast.AST) -> None:
        # ``sorted(...)`` anywhere around the iterable makes the order
        # deterministic; only flag naked iteration.
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("sorted", "len")
        ):
            return
        name: Optional[str] = None
        if isinstance(it, ast.Name):
            name = it.id
        elif (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("items", "keys", "values")
            and isinstance(it.func.value, ast.Name)
        ):
            name = it.func.value.id
        if name is not None:
            self.iterations.append((name, it.lineno))

    def finish(self) -> None:
        for name, line in self.iterations:
            if name in self.id_keyed and line not in self.allowed_lines:
                self.findings.append(Finding(
                    self.path, line,
                    f"iteration over id()-keyed dict {name!r} (keyed at "
                    f"line {self.id_keyed[name]}) is order-nondeterministic; "
                    "wrap in sorted() or key by a stable value",
                ))


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    if any(FILE_PRAGMA in text for text in lines):
        return []
    allowed = {
        i
        for i, text in enumerate(lines, start=1)
        if PRAGMA in text
    }
    visitor = _Visitor(path, allowed)
    visitor.visit(tree)
    visitor.finish()
    return visitor.findings


def lint_paths(paths: List[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    findings.sort(key=lambda f: (str(f.path), f.line, f.message))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Forbid nondeterminism primitives in simulation code."
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits a machine-readable findings list)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [Path(__file__).resolve().parent.parent / "src" / "repro"]
    for path in paths:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
    findings = lint_paths(paths)
    if args.format == "json":
        print(json.dumps({"findings": [f.to_dict() for f in findings]},
                         indent=2, sort_keys=True))
        return 1 if findings else 0
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
